"""GraphSession: shared-cluster multiplexing, parity, checkpoints.

The contracts under test (ISSUE 4 acceptance):

* one ``Cluster`` / execution backend / validator serves every task,
  with validation and the route-updates charge once per session phase;
* per-task answers are **bit-identical** to the standalone algorithm
  classes fed the same batches, on both execution backends;
* ``checkpoint`` -> ``restore`` round-trips to identical query answers
  and identical continuation;
* ``close()`` tears the backend down deterministically (workers gone
  when it returns, not at GC time).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import GraphSession, dele, ins
from repro.core import (
    DynamicBipartiteness,
    ExactMSFInsertOnly,
    MPCConnectivity,
)
from repro.core.api import BatchDynamicAlgorithm
from repro.errors import (
    BatchTooLargeError,
    ConfigurationError,
    InvalidUpdateError,
    QueryError,
)
from repro.mpc import MPCConfig, SharedMemoryBackend, get_backend
from repro.streams import as_batches

N = 48
WORKERS = 2
PARITY_TASKS = ("connectivity", "msf", "bipartiteness")


@pytest.fixture(scope="module")
def shared_backend():
    """The process-wide 2-worker fleet (same cache test_backend uses)."""
    return get_backend("shared_memory", workers=WORKERS)


def _config(backend: str, seed: int = 3, n: int = N) -> MPCConfig:
    workers = WORKERS if backend == "shared_memory" else None
    return MPCConfig(n=n, seed=seed, backend=backend,
                     backend_workers=workers)


def _insert_stream(n: int = N):
    """Weighted insertion-only stream (msf-compatible), two components
    merged late plus a non-tree spare."""
    ups = [ins(i, i + 1, float(i % 7 + 1)) for i in range(0, 12)]
    ups += [ins(i, i + 1, float(i % 5 + 1)) for i in range(20, 30)]
    ups += [ins(12, 20, 2.0), ins(0, 30, 9.0), ins(1, 29, 1.0)]
    return ups


def _churn_stream():
    """Insertions then deletions that force AGM replacement recovery."""
    ups = [ins(i, i + 1) for i in range(0, 14)]
    ups += [ins(0, 7), ins(3, 11), ins(20, 21), ins(21, 22), ins(20, 22)]
    ups += [dele(5, 6), dele(0, 1), dele(21, 22), dele(3, 4)]
    ups += [ins(40, 41), dele(9, 10)]
    return ups


# ---------------------------------------------------------------------------
# Shared-substrate structure
# ---------------------------------------------------------------------------

class TestSharedSubstrate:
    def test_one_cluster_one_validator(self):
        with GraphSession(N, tasks=PARITY_TASKS,
                          config=_config("sequential")) as session:
            algs = [session.query(task) for task in PARITY_TASKS]
            assert len(algs) == 3
            for alg in algs:
                assert alg.cluster is session.cluster
                assert alg.validator is session.validator
                assert alg._attached

    def test_validation_and_routing_once_per_phase(self):
        with GraphSession(N, tasks=PARITY_TASKS,
                          config=_config("sequential")) as session:
            phases = session.ingest(_insert_stream(), batch_size=8)
            assert phases and all(p.batch_size for p in phases)
            for phase in phases:
                # The routing gather is charged once, on the session's
                # own phase record ...
                assert phase.route.rounds_by_category.get(
                    "route-updates", 0) > 0
                # ... and never again inside any task's phase.
                for snap in phase.per_task.values():
                    assert "route-updates" not in snap.rounds_by_category
            # A valid shared stream: per-task validation would have
            # rejected every post-first-task insert as a duplicate, so
            # reaching here with the right edge count is the proof.
            assert session.num_edges == len(_insert_stream())

    def test_memory_ledger_namespaced_per_task(self):
        with GraphSession(N, tasks=("connectivity", "msf"),
                          config=_config("sequential")) as session:
            session.ingest(_insert_stream(), batch_size=8)
            breakdown = session.cluster.metrics.memory_breakdown()
            # Both tasks register a "forest"; namespacing keeps them
            # from overwriting each other on the shared ledger.
            assert "mpc-connectivity/forest" in breakdown
            assert "msf-exact/forest" in breakdown
            assert "forest" not in breakdown

    def test_unknown_and_duplicate_tasks_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown task"):
            GraphSession(N, tasks=("connectivity", "nope"),
                         config=_config("sequential"))
        with pytest.raises(ConfigurationError, match="duplicate"):
            GraphSession(N, tasks=("msf", "msf"),
                         config=_config("sequential"))
        with pytest.raises(ConfigurationError, match="at least one"):
            GraphSession(N, tasks=(), config=_config("sequential"))

    def test_attach_requires_shared_cluster(self):
        session = GraphSession(N, config=_config("sequential"))
        stray = MPCConnectivity(_config("sequential"))
        with pytest.raises(ConfigurationError, match="shared cluster"):
            stray.attach(session.cluster, session.validator)
        session.close()

    def test_task_registry_covers_all_maintained_algorithms(self):
        registry = BatchDynamicAlgorithm.task_registry()
        for task in ("connectivity", "msf", "msf_approx", "bipartiteness",
                     "matching", "matching_greedy", "matching_size"):
            assert task in registry

    def test_task_options(self):
        with GraphSession(
            N, tasks={"msf_approx": {"eps": 0.5, "max_weight": 64.0}},
            config=_config("sequential"),
        ) as session:
            assert session.query("msf_approx").eps == 0.5

    def test_tasks_accepts_one_shot_iterator(self):
        with GraphSession(N, tasks=iter(["connectivity", "msf"]),
                          config=_config("sequential")) as session:
            assert session.tasks == ["connectivity", "msf"]

    def test_tasks_accepts_bare_string(self):
        with GraphSession(N, tasks="connectivity",
                          config=_config("sequential")) as session:
            assert session.tasks == ["connectivity"]

    def test_rejected_batch_leaves_state_untouched(self):
        with GraphSession(N, tasks=("connectivity", "bipartiteness"),
                          config=_config("sequential")) as session:
            session.ingest([(0, 1)])
            # (2, 3) is fresh but rides in a batch with a duplicate
            # insert: atomic validation must not admit it.
            with pytest.raises(InvalidUpdateError, match="existing"):
                session.apply_batch([ins(2, 3), ins(0, 1)])
            assert session.edges() == {(0, 1)}
            with pytest.raises(InvalidUpdateError, match="missing"):
                session.apply_batch([dele(2, 3)])
            # The session stays consistent and keeps serving.
            session.ingest([(2, 3)])
            assert session.connected(2, 3)
            assert session.num_edges == 2

    def test_backend_workers_honoured_with_explicit_config(
            self, shared_backend):
        # backend_workers must take effect even when config= is given.
        session = GraphSession(config=_config("sequential"),
                               backend="shared_memory",
                               backend_workers=WORKERS)
        assert session.cluster.backend is shared_backend
        assert session.cluster.backend.num_workers == WORKERS
        session.close(close_backend=False)

    def test_mid_phase_task_failure_marks_session_inconsistent(self):
        session = GraphSession(N, tasks=("connectivity", "bipartiteness"),
                               config=_config("sequential"))
        session.ingest([(0, 1)])

        def boom(batch):
            raise RuntimeError("boom")

        session.query("bipartiteness").apply_batch = boom
        with pytest.raises(RuntimeError, match="boom"):
            session.apply_batch([(1, 2)])
        # Tasks now sit at different stream positions: everything but
        # close() refuses to touch the inconsistent state.
        with pytest.raises(QueryError, match="inconsistent"):
            session.ingest([(2, 3)])
        with pytest.raises(QueryError, match="inconsistent"):
            session.spanning_forest()
        with pytest.raises(QueryError, match="inconsistent"):
            session.query("connectivity")
        with pytest.raises(QueryError, match="inconsistent"):
            session.checkpoint("/dev/null")
        session.close()


# ---------------------------------------------------------------------------
# Ingestion surface
# ---------------------------------------------------------------------------

class TestIngestion:
    def test_accepts_pairs_triples_updates_and_generators(self):
        with GraphSession(N, tasks=("connectivity", "msf"),
                          config=_config("sequential")) as session:
            session.ingest([(0, 1), (1, 2, 5.0), ins(2, 3, 7.0)])
            assert session.num_edges == 3
            assert session.connected(0, 3)

            def lazy():
                for i in range(10, 20):
                    yield (i, i + 1)

            phases = session.ingest(lazy(), batch_size=4)
            assert [p.batch_size for p in phases] == [4, 4, 2]
            assert session.num_edges == 13

    def test_generator_consumed_lazily_in_stream_order(self):
        consumed = []

        def stream():
            for i in range(9):
                consumed.append(i)
                yield (i, i + 1)

        with GraphSession(N, config=_config("sequential")) as session:
            it = iter(stream())
            phases = session.ingest(it, batch_size=4)
            # Order preserved: edge (i, i+1) entered phase i // 4.
            assert [p.batch_size for p in phases] == [4, 4, 1]
            assert consumed == list(range(9))
            assert session.connected(0, 9)

    def test_batch_bound_enforced(self):
        config = _config("sequential")
        with GraphSession(N, config=config) as session:
            too_many = [(i, i + 1) for i in range(session.batch_size + 1)]
            with pytest.raises(BatchTooLargeError):
                session.apply_batch(too_many)
            with pytest.raises(ConfigurationError):
                session.ingest(too_many, batch_size=session.batch_size + 1)
            # ingest() splits the same stream fine.
            session.ingest(too_many)

    def test_insert_only_task_rejects_deletions_before_any_state_change(self):
        with GraphSession(N, tasks=("connectivity", "msf"),
                          config=_config("sequential")) as session:
            session.ingest([(0, 1), (1, 2)])
            edges_before = session.edges()
            phases_before = len(session.phases)
            with pytest.raises(InvalidUpdateError, match="insertion-only"):
                session.apply_batch([dele(0, 1)])
            # The guard fired before the validator or any task ran.
            assert session.edges() == edges_before
            assert len(session.phases) == phases_before
            assert len(session.query("connectivity").phases) == phases_before

    def test_invalid_item_rejected(self):
        with GraphSession(N, config=_config("sequential")) as session:
            with pytest.raises(InvalidUpdateError):
                session.apply_batch(["nonsense"])


# ---------------------------------------------------------------------------
# Query surface + reporting
# ---------------------------------------------------------------------------

class TestQueriesAndReport:
    def test_absent_tasks_raise_query_error(self):
        with GraphSession(N, tasks=("msf",),
                          config=_config("sequential")) as session:
            with pytest.raises(QueryError, match="not maintained"):
                session.query("bipartiteness")
            with pytest.raises(QueryError):
                session.is_bipartite()
            with pytest.raises(QueryError):
                session.matching()
            # msf still answers connectivity-style queries.
            session.ingest([(0, 1, 2.0)])
            assert session.connected(0, 1)
            assert session.msf_weight() == 2.0
            assert session.num_components() == N - 1
            assert len(session.spanning_forest().edges) == 1

    def test_report_feeds_tables(self):
        with GraphSession(N, tasks=PARITY_TASKS,
                          config=_config("sequential")) as session:
            session.ingest(_insert_stream(), batch_size=8)
            rows = session.report()
            tasks_seen = {row["task"] for row in rows}
            assert tasks_seen == {"(route)", *PARITY_TASKS}
            per_phase = [r for r in rows if r["task"] == "connectivity"]
            assert len(per_phase) == len(session.phases)
            text = session.report_table()
            assert "connectivity" in text and "rounds" in text

    def test_summary_records_backend(self):
        with GraphSession(N, tasks=("connectivity",),
                          config=_config("sequential")) as session:
            rows = session.summary()
            assert rows[0]["backend"] == session.cluster.backend.describe()
            assert rows[0]["task"] == "connectivity"

    def test_summary_memory_is_per_task_share(self):
        with GraphSession(N, tasks=("connectivity", "msf"),
                          config=_config("sequential")) as session:
            session.ingest([(i, i + 1, 1.0) for i in range(8)])
            by_task = {row["task"]: row["memory_words"]
                       for row in session.summary()}
            # The shares partition the shared ledger instead of each
            # row repeating the whole-cluster total.
            assert (sum(by_task.values())
                    == session.cluster.metrics.total_memory)
            # Sketchless MSF is orders of magnitude below connectivity.
            assert by_task["msf"] < by_task["connectivity"]

    def test_session_phase_rounds_parallel_composition(self):
        with GraphSession(N, tasks=PARITY_TASKS,
                          config=_config("sequential")) as session:
            (phase,) = session.ingest([(0, 1, 1.0)])
            worst = max(m.rounds for m in phase.per_task.values())
            assert phase.rounds == phase.route.rounds + worst


# ---------------------------------------------------------------------------
# Parity matrix: session answers == standalone answers, both backends
# ---------------------------------------------------------------------------

def _standalone_answers(config: MPCConfig, batches):
    conn = MPCConnectivity(config)
    msf = ExactMSFInsertOnly(config)
    bip = DynamicBipartiteness(config)
    for batch in batches:
        conn.apply_batch(batch)
        msf.apply_batch(batch)
        bip.apply_batch(batch)
    return {
        "forest": conn.query_spanning_forest().edges,
        "components": conn.num_components(),
        "msf_edges": msf.query_msf().edges,
        "msf_weight": msf.msf_weight(),
        "bipartite": bip.is_bipartite(),
        "cells": conn.family.pool.cells.copy(),
    }


class TestParityMatrix:
    @pytest.mark.parametrize("backend", ["sequential", "shared_memory"])
    def test_insert_only_matrix(self, backend, shared_backend):
        config = _config(backend)
        stream = _insert_stream()
        reference = _standalone_answers(config, as_batches(stream, 8))

        session = GraphSession(N, tasks=PARITY_TASKS, config=config)
        session.ingest(iter(stream), batch_size=8)
        try:
            assert (session.spanning_forest().edges
                    == reference["forest"])
            assert session.num_components() == reference["components"]
            msf = session.query("msf").query_msf()
            assert msf.edges == reference["msf_edges"]
            assert session.msf_weight() == reference["msf_weight"]
            assert session.is_bipartite() == reference["bipartite"]
            # Bit-identical sketch state, not merely equal answers.
            assert np.array_equal(
                session.query("connectivity").family.pool.cells,
                reference["cells"],
            )
        finally:
            session.close(close_backend=False)

    @pytest.mark.parametrize("backend", ["sequential", "shared_memory"])
    def test_deletion_churn_matrix(self, backend, shared_backend):
        config = _config(backend, seed=11)
        stream = _churn_stream()
        conn = MPCConnectivity(config)
        bip = DynamicBipartiteness(config)
        for batch in as_batches(stream, 6):
            conn.apply_batch(batch)
            bip.apply_batch(batch)

        session = GraphSession(N, tasks=("connectivity", "bipartiteness"),
                               config=config)
        session.ingest(stream, batch_size=6)
        try:
            assert (session.spanning_forest().edges
                    == conn.query_spanning_forest().edges)
            assert session.num_components() == conn.num_components()
            assert session.is_bipartite() == bip.is_bipartite()
            assert (session.query("connectivity").stats
                    == conn.stats)
            assert np.array_equal(
                session.query("connectivity").family.pool.cells,
                conn.family.pool.cells,
            )
        finally:
            session.close(close_backend=False)

    def test_backends_agree_with_each_other(self, shared_backend):
        answers = {}
        for backend in ("sequential", "shared_memory"):
            session = GraphSession(N, tasks=("connectivity",),
                                   config=_config(backend, seed=11))
            session.ingest(_churn_stream(), batch_size=6)
            answers[backend] = session.spanning_forest().edges
            session.close(close_backend=False)
        assert answers["sequential"] == answers["shared_memory"]


# ---------------------------------------------------------------------------
# Checkpoint / restore
# ---------------------------------------------------------------------------

class TestCheckpointRestore:
    def test_round_trip_answers_identical(self, tmp_path):
        stream = _insert_stream()
        session = GraphSession(N, tasks=PARITY_TASKS,
                               config=_config("sequential"))
        session.ingest(stream, batch_size=8)
        path = os.fspath(tmp_path / "session.ckpt")
        session.checkpoint(path)

        restored = GraphSession.restore(path)
        assert restored.tasks == session.tasks
        assert restored.num_edges == session.num_edges
        assert (restored.spanning_forest().edges
                == session.spanning_forest().edges)
        assert restored.msf_weight() == session.msf_weight()
        assert restored.is_bipartite() == session.is_bipartite()
        assert np.array_equal(
            restored.query("connectivity").family.pool.cells,
            session.query("connectivity").family.pool.cells,
        )
        assert len(restored.phases) == len(session.phases)
        session.close()
        restored.close()

    def test_continuation_matches_uninterrupted_run(self, tmp_path):
        config = _config("sequential", seed=11)
        part1 = _churn_stream()[:15]
        part2 = _churn_stream()[15:]

        uninterrupted = GraphSession(
            N, tasks=("connectivity", "bipartiteness"), config=config)
        uninterrupted.ingest(part1, batch_size=6)
        uninterrupted.ingest(part2, batch_size=6)

        session = GraphSession(
            N, tasks=("connectivity", "bipartiteness"), config=config)
        session.ingest(part1, batch_size=6)
        path = os.fspath(tmp_path / "mid.ckpt")
        session.checkpoint(path)
        restored = GraphSession.restore(path)
        restored.ingest(part2, batch_size=6)

        assert (restored.spanning_forest().edges
                == uninterrupted.spanning_forest().edges)
        assert (restored.is_bipartite()
                == uninterrupted.is_bipartite())
        assert np.array_equal(
            restored.query("connectivity").family.pool.cells,
            uninterrupted.query("connectivity").family.pool.cells,
        )
        session.close()
        restored.close()
        uninterrupted.close()

    def test_cross_backend_restore(self, tmp_path, shared_backend):
        """Checkpoint under shared_memory, restore onto sequential."""
        config = _config("shared_memory", seed=11)
        session = GraphSession(N, tasks=("connectivity",), config=config)
        session.ingest(_churn_stream(), batch_size=6)
        path = os.fspath(tmp_path / "shm.ckpt")
        session.checkpoint(path)

        restored = GraphSession.restore(path, backend="sequential")
        assert not restored.cluster.backend.parallel
        assert (restored.spanning_forest().edges
                == session.spanning_forest().edges)
        restored.ingest([(40, 42)])
        session.ingest([(40, 42)])
        assert np.array_equal(
            restored.query("connectivity").family.pool.cells,
            session.query("connectivity").family.pool.cells,
        )
        session.close(close_backend=False)
        restored.close()

    def test_bad_format_rejected(self, tmp_path):
        import pickle

        path = os.fspath(tmp_path / "bad.ckpt")
        with open(path, "wb") as fh:
            pickle.dump({"format": 999}, fh)
        with pytest.raises(ConfigurationError, match="format"):
            GraphSession.restore(path)


# ---------------------------------------------------------------------------
# Deterministic teardown
# ---------------------------------------------------------------------------

def _await_death(procs, timeout=5.0):
    deadline = time.monotonic() + timeout
    while any(p.is_alive() for p in procs):
        if time.monotonic() > deadline:
            return False
        time.sleep(0.05)
    return True


class TestDeterministicShutdown:
    def test_session_close_stops_workers(self):
        backend = SharedMemoryBackend(num_workers=1)
        session = GraphSession(N, tasks=("connectivity",),
                               config=_config("sequential"),
                               backend=backend)
        session.ingest([(0, 1), (1, 2)])
        procs = list(backend._procs)
        assert all(p.is_alive() for p in procs)
        session.close()
        assert session.closed
        assert not backend.usable
        assert _await_death(procs), "workers survived session.close()"
        # Idempotent, and a closed session rejects further work.
        session.close()
        with pytest.raises(QueryError, match="closed"):
            session.ingest([(2, 3)])

    def test_cluster_context_manager_stops_workers(self):
        backend = SharedMemoryBackend(num_workers=1)
        from repro.mpc import Cluster

        with Cluster(_config("sequential"), backend=backend) as cluster:
            assert cluster.backend is backend
        procs = list(backend._procs)
        assert not backend.usable
        assert _await_death(procs), "workers survived Cluster.__exit__"

    def test_backend_context_manager(self):
        with SharedMemoryBackend(num_workers=1) as backend:
            procs = list(backend._procs)
            assert all(p.is_alive() for p in procs)
        assert not backend.usable
        assert _await_death(procs), "workers survived backend.__exit__"

    def test_close_leaves_cached_fleet_for_other_sessions(
            self, shared_backend):
        """Default close() only tears down a *privately owned* fleet;
        the process-cached backend other sessions share stays up."""
        s1 = GraphSession(N, config=_config("shared_memory"))
        s2 = GraphSession(N, config=_config("shared_memory"))
        assert s1.cluster.backend is s2.cluster.backend is shared_backend
        s1.ingest([(0, 1)])
        s2.ingest([(0, 1)])
        s1.close()
        assert shared_backend.usable
        s2.ingest([(1, 2)])        # the survivor keeps working
        assert s2.connected(0, 2)
        s2.close()
        assert shared_backend.usable

    def test_cluster_close_spares_cached_backend(self, shared_backend):
        from repro.mpc import Cluster

        with Cluster(_config("shared_memory")) as cluster:
            assert cluster.backend is shared_backend
        assert shared_backend.usable
        # Force-close is explicit (and the factory would re-spawn).
        assert shared_backend.cached

    def test_sequential_close_is_noop(self):
        with GraphSession(N, config=_config("sequential")) as session:
            session.ingest([(0, 1)])
        assert session.closed
        # The process-wide sequential singleton is untouched.
        assert get_backend("sequential").usable

    def test_queries_still_answer_after_close(self):
        """Closing releases execution resources; the maintained
        solution stays readable (it lives in parent memory)."""
        session = GraphSession(N, tasks=("connectivity",),
                               config=_config("sequential"))
        session.ingest([(0, 1), (1, 2)])
        session.close()
        assert session.connected(0, 2)


# ---------------------------------------------------------------------------
# Satellite: close() after failed / partial restore
# ---------------------------------------------------------------------------

class TestCloseAfterPartialRestore:
    def _checkpoint(self, tmp_path, backend: str = "sequential") -> str:
        path = os.fspath(tmp_path / "session.ckpt")
        with GraphSession(N, tasks=("connectivity",),
                          config=_config(backend)) as session:
            session.ingest(_insert_stream())
            session.checkpoint(path)
            if backend != "sequential":
                session.close(close_backend=False)
        return path

    def test_failed_restore_rolls_back_and_checkpoint_survives(
            self, tmp_path):
        from repro.errors import SketchError
        from repro.mpc.backend import ExecutionBackend

        path = self._checkpoint(tmp_path)

        class Exploding(ExecutionBackend):
            name = "exploding"

            def attach_pool(self, pool, randomness):
                raise SketchError("simulated attach failure")

        with pytest.raises(SketchError, match="simulated attach"):
            GraphSession.restore(path, backend=Exploding())
        # The rollback left nothing half-attached: the same checkpoint
        # restores cleanly afterwards and answers correctly.
        restored = GraphSession.restore(path)
        assert restored.connected(0, 12)
        restored.close()

    def test_close_never_forces_the_lazy_backend(self, tmp_path,
                                                 monkeypatch):
        """A session whose backend property was never forced is torn
        down without materialising a worker fleet first."""
        path = self._checkpoint(tmp_path)
        session = GraphSession.restore(path)
        # Put the cluster back into the never-forced lazy state a
        # partial restore leaves behind (families already detached).
        for alg in session._all_algorithms():
            for family in alg._sketch_families():
                family.detach_backend()
        session.cluster._backend = None

        def boom(*args, **kwargs):
            raise AssertionError(
                "close() must not resolve the lazy backend"
            )

        monkeypatch.setattr("repro.mpc.simulator.resolve_backend", boom)
        monkeypatch.setattr("repro.mpc.backend.resolve_backend", boom)
        session.close()          # must not spawn / resolve anything
        assert session.closed
        session.close()          # and double-close stays a no-op

    def test_double_close_on_inconsistent_session(self):
        session = GraphSession(N, tasks=("connectivity",
                                         "bipartiteness"),
                               config=_config("sequential"))
        session.ingest([(0, 1)])

        def boom(batch):
            raise RuntimeError("boom")

        session.query("bipartiteness").apply_batch = boom
        with pytest.raises(RuntimeError, match="boom"):
            session.apply_batch([(1, 2)])
        # Latched inconsistent: close() still works, twice, quietly.
        session.close()
        session.close()
        assert session.closed

    def test_restore_reattaches_through_live_rings(self, tmp_path):
        """Checkpoint under shared memory, restore onto a *fresh*
        private fleet: the re-attach routes continued small-batch
        ingestion through the new backend's descriptor rings."""
        path = self._checkpoint(tmp_path, backend="shared_memory")
        fresh = SharedMemoryBackend(num_workers=2)
        try:
            restored = GraphSession.restore(path, backend=fresh)
            before = fresh.ring_dispatches
            restored.ingest([(40, 41), (41, 42)])
            assert fresh.ring_dispatches > before
            assert restored.connected(40, 42)
            reference = GraphSession(N, tasks=("connectivity",),
                                     config=_config("sequential"))
            reference.ingest(_insert_stream())
            reference.ingest([(40, 41), (41, 42)])
            assert np.array_equal(
                restored.query("connectivity").family.pool.cells,
                reference.query("connectivity").family.pool.cells,
            )
            reference.close()
            restored.close(close_backend=False)
        finally:
            fresh.close()


# ---------------------------------------------------------------------------
# Self-healing fleet under a live session (PR 6)
# ---------------------------------------------------------------------------

class TestSelfHealingSession:
    """Worker loss mid-phase must heal (or degrade) underneath the
    session: answers stay bit-identical, the session never latches
    inconsistent, and the recovery is visible in ``fleet_health()``
    and the report's ``fleet`` column."""

    def _reference(self, stream):
        session = GraphSession(N, tasks=("connectivity",),
                               config=_config("sequential"))
        session.ingest(stream)
        return session

    def test_worker_kill_mid_phase_keeps_session_live(self):
        from repro.mpc.faults import FaultPlan

        backend = SharedMemoryBackend(
            num_workers=WORKERS, call_timeout=30.0,
            faults=FaultPlan.kill_before(1, nth=1, op="apply"),
        )
        try:
            session = GraphSession(N, tasks=("connectivity",),
                                   seed=3, backend=backend)
            session.ingest(_insert_stream())
            reference = self._reference(_insert_stream())
            assert session.connected(0, 12)
            assert (session.spanning_forest().edges
                    == reference.spanning_forest().edges)
            assert np.array_equal(
                session.query("connectivity").family.pool.cells,
                reference.query("connectivity").family.pool.cells,
            )
            # Healed, not latched: further ingestion and queries work.
            session.ingest([(40, 41)])
            reference.ingest([(40, 41)])
            assert session.connected(40, 41)
            health = session.fleet_health()
            assert health["respawns"] >= 1
            assert backend.degraded is None and backend.usable
            # The recovery shows up in the per-phase report column.
            fleets = [row["fleet"] for row in session.report()]
            assert any("respawns=" in f for f in fleets)
            reference.close()
            session.close(close_backend=False)
        finally:
            backend.close()

    def test_degraded_fleet_answers_identically(self):
        from repro.mpc.faults import FaultPlan

        backend = SharedMemoryBackend(
            num_workers=WORKERS, call_timeout=30.0, retries=1,
            backoff=0.01, faults=FaultPlan.kill_always(1),
        )
        try:
            session = GraphSession(N, tasks=("connectivity",),
                                   seed=3, backend=backend)
            session.ingest(_churn_stream())
            reference = self._reference(_churn_stream())
            assert backend.degraded is not None
            assert backend.usable, "degraded is a mode, not a brick"
            assert session.fleet_health()["degrades"] == 1
            assert np.array_equal(
                session.query("connectivity").family.pool.cells,
                reference.query("connectivity").family.pool.cells,
            )
            assert (session.spanning_forest().edges
                    == reference.spanning_forest().edges)
            # The degraded fleet keeps serving the session.
            session.ingest([(40, 42), (42, 44)])
            reference.ingest([(40, 42), (42, 44)])
            assert session.connected(40, 44)
            assert (session.num_components()
                    == reference.num_components())
            reference.close()
            session.close(close_backend=False)
        finally:
            backend.close()

    def test_restore_onto_fleet_with_killed_worker(self, tmp_path):
        """The control path heals too: restoring onto a fleet that lost
        a worker respawns it during the attach fan-out."""
        path = os.fspath(tmp_path / "session.ckpt")
        with GraphSession(N, tasks=("connectivity",),
                          config=_config("sequential")) as donor:
            donor.ingest(_insert_stream())
            donor.checkpoint(path)

        backend = SharedMemoryBackend(num_workers=WORKERS,
                                      call_timeout=30.0)
        try:
            backend._procs[0].kill()
            backend._procs[0].join(5.0)
            restored = GraphSession.restore(path, backend=backend)
            assert restored.connected(0, 12)
            assert backend.health["respawns"] >= 1
            assert backend.degraded is None and backend.usable
            restored.ingest([(40, 41)])
            assert restored.connected(40, 41)
            restored.close(close_backend=False)
        finally:
            backend.close()

    def test_restore_onto_degraded_fleet(self, tmp_path):
        from repro.mpc.faults import FaultPlan
        from repro.sketch import SketchFamily

        path = os.fspath(tmp_path / "session.ckpt")
        with GraphSession(N, tasks=("connectivity",),
                          config=_config("sequential")) as donor:
            donor.ingest(_insert_stream())
            donor.checkpoint(path)

        backend = SharedMemoryBackend(
            num_workers=WORKERS, call_timeout=30.0, retries=0,
            backoff=0.0, faults=FaultPlan.kill_always(0),
        )
        try:
            # Degrade the fleet through the public op path first.
            probe = SketchFamily(8, columns=2,
                                 rng=np.random.default_rng(0),
                                 backend=backend)
            probe.apply_edges_bulk(np.array([0], dtype=np.int64),
                                   np.array([1], dtype=np.int64),
                                   np.array([1], dtype=np.int64))
            assert backend.degraded is not None
            restored = GraphSession.restore(path, backend=backend)
            assert restored.connected(0, 12)
            restored.ingest([(40, 41)])
            assert restored.connected(40, 41)
            reference = self._reference(_insert_stream())
            reference.ingest([(40, 41)])
            assert np.array_equal(
                restored.query("connectivity").family.pool.cells,
                reference.query("connectivity").family.pool.cells,
            )
            reference.close()
            probe.detach_backend()
            restored.close(close_backend=False)
        finally:
            backend.close()

    def test_failed_restore_mid_attach_rolls_back_real_fleet(
            self, tmp_path):
        """Extends the PR 5 rollback contract to a real worker fleet:
        an attach that explodes after the first family leaves no
        half-attached pools, and the same checkpoint restores cleanly
        onto the same backend afterwards."""
        from repro.errors import SketchError

        path = os.fspath(tmp_path / "session.ckpt")
        with GraphSession(N, tasks=("connectivity", "bipartiteness"),
                          config=_config("sequential")) as donor:
            donor.ingest([(i, i + 1) for i in range(12)])
            donor.checkpoint(path)

        backend = SharedMemoryBackend(num_workers=WORKERS,
                                      call_timeout=30.0)
        real_attach = backend.attach_pool
        calls = {"n": 0}

        def explode_on_second(pool, randomness):
            calls["n"] += 1
            if calls["n"] == 2:
                raise SketchError("simulated attach failure")
            return real_attach(pool, randomness)

        backend.attach_pool = explode_on_second
        try:
            with pytest.raises(SketchError,
                               match="simulated attach"):
                GraphSession.restore(path, backend=backend)
            backend.attach_pool = real_attach
            # Rollback released the first family's attachment: nothing
            # is left registered on the fleet.
            assert len(backend._handles) == 0
            restored = GraphSession.restore(path, backend=backend)
            assert restored.connected(0, 12)
            assert restored.is_bipartite()
            restored.close(close_backend=False)
        finally:
            backend.attach_pool = real_attach
            backend.close()
