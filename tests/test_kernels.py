"""Kernel-tier dispatcher: parity matrix, fallback semantics, profiling.

The contract under test (see ``docs/kernels.md``): every kernel's
tiers are bit-identical, the dispatcher resolves ``REPRO_KERNELS``
through the validated-read contract (garbage raises naming the
variable, ``numba`` without numba raises, ``auto`` degrades silently
with a counter), and callers reach kernels only through the
dispatcher's re-bindable module attributes.

The cross-tier matrix parametrizes over ``available_tiers()``: on a
numpy-only host it degenerates to the reference tier (still asserting
the kernels against exact scalar arithmetic); CI's numba lane runs the
full numpy-vs-compiled comparison.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import kernels
from repro.errors import SketchError
from repro.kernels import profile, registry
from repro.mpc.backend import SequentialBackend, SharedMemoryBackend
from repro.mpc.faults import FaultPlan
from repro.sketch import L0Sampler, SamplerRandomness, SketchFamily
from repro.sketch.hashing import KWiseHash, MERSENNE_P, trailing_zeros
from repro.sketch.l0_sampler import (
    is_zero_cells,
    query_cells,
    query_group_cells,
    sample_cells,
    scan_group_cells,
    zero_group_cells,
)
from repro.sketch.sparse_recovery import (
    _suffix_cumsum,
    merge_group_cells,
    recover_from_prefix,
)

ROOT = Path(__file__).resolve().parents[1]

P = MERSENNE_P

TIERS = kernels.available_tiers()

CROSS_TIER = pytest.mark.skipif(
    len(TIERS) < 2, reason="compiled tier unavailable (no numba)")


@pytest.fixture(autouse=True)
def _restore_tier():
    """Every test leaves the process on the tier it found."""
    before = kernels.active_tier()
    yield
    kernels.set_tier(before)


def _field(rng, n):
    return rng.integers(0, P, size=n, dtype=np.uint64)


# ---------------------------------------------------------------------------
# Each tier against exact scalar arithmetic
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("tier", TIERS)
class TestScalarGolden:
    def test_mulmod_addmod(self, tier):
        kernels.set_tier(tier)
        rng = np.random.default_rng(1)
        a, b = _field(rng, 300), _field(rng, 300)
        mul = kernels.mulmod_many(a, b)
        add = kernels.addmod_many(a, b)
        for x, y, m, s in zip(a, b, mul, add):
            assert int(m) == (int(x) * int(y)) % P
            assert int(s) == (int(x) + int(y)) % P

    def test_poly_field_values(self, tier):
        kernels.set_tier(tier)
        rng = np.random.default_rng(2)
        hashes = [KWiseHash(4, 1 << 20, rng) for _ in range(3)]
        coeffs = np.array([[h.coeffs[j] for h in hashes]
                           for j in range(4)], dtype=np.uint64)
        xs = _field(rng, 64)
        values = kernels.poly_field_values(coeffs, xs)
        for i, x in enumerate(xs):
            for j, h in enumerate(hashes):
                assert int(values[i, j]) == h.field_value(int(x))

    def test_trailing_zeros_many(self, tier):
        kernels.set_tier(tier)
        rng = np.random.default_rng(3)
        xs = rng.integers(0, 1 << 62, size=200, dtype=np.uint64)
        xs[:4] = [0, 1, 2, 1 << 40]
        out = kernels.trailing_zeros_many(xs, 17)
        assert out.tolist() == [trailing_zeros(int(x), 17) for x in xs]

    def test_powmod_many(self, tier):
        kernels.set_tier(tier)
        rng = np.random.default_rng(4)
        z = int(rng.integers(1, P))
        exps = rng.integers(0, 1 << 40, size=100, dtype=np.uint64)
        exps[:2] = [0, 1]
        out = kernels.powmod_many(exps, z)
        assert out.dtype == np.int64
        assert out.tolist() == [pow(z, int(e), P) for e in exps]

    def test_combine_limbs(self, tier):
        kernels.set_tier(tier)
        rng = np.random.default_rng(5)
        lo = rng.integers(-(1 << 52), 1 << 52, size=200, dtype=np.int64)
        hi = rng.integers(-(1 << 52), 1 << 52, size=200, dtype=np.int64)
        out = kernels.combine_limbs(lo, hi)
        assert out.tolist() == [
            (int(a) + (int(b) << 32)) % P for a, b in zip(lo, hi)
        ]

    def test_merge_groups_with_empty_group(self, tier):
        kernels.set_tier(tier)
        rng = np.random.default_rng(6)
        cells = rng.integers(-50, 50, size=(5, 4, 3, 4)).astype(np.int64)
        groups = [np.array([0, 2], dtype=np.int64),
                  np.array([], dtype=np.int64),
                  np.array([4, 1, 3], dtype=np.int64)]
        merged = merge_group_cells(cells, groups)
        expected = np.stack([
            cells[g].sum(axis=0) if g.size else
            np.zeros(cells.shape[1:], dtype=np.int64)
            for g in groups
        ])
        assert np.array_equal(merged, expected)

    def test_decode_prefix_matches_generic_path(self, tier):
        kernels.set_tier(tier)
        rng = np.random.default_rng(7)
        randomness = SamplerRandomness(256, 5, rng)
        sampler = L0Sampler(randomness)
        idxs = rng.integers(0, 256, size=150).astype(np.int64)
        deltas = rng.choice([-1, 1], size=150).astype(np.int64)
        sampler.update_many(idxs, deltas)
        prefix = _suffix_cumsum(sampler.matrix.cells)
        fused = kernels.decode_prefix(prefix, randomness.universe,
                                      randomness.z)
        # A plain lambda has no __self__, forcing the generic
        # callback path inside recover_from_prefix.
        generic = recover_from_prefix(
            prefix, randomness.universe,
            lambda i, w, f: randomness.fingerprint_ok_many(i, w, f))
        assert np.array_equal(fused, generic)
        # Every recovered coordinate is a real support member.
        vec = {}
        for i, d in zip(idxs.tolist(), deltas.tolist()):
            vec[i] = vec.get(i, 0) + d
        live = {i for i, v in vec.items() if v != 0}
        for got in fused.tolist():
            assert got == -1 or got in live

    def test_sampler_roundtrip_and_zero(self, tier):
        kernels.set_tier(tier)
        rng = np.random.default_rng(8)
        randomness = SamplerRandomness(128, 6, rng)
        sampler = L0Sampler(randomness)
        assert sampler.is_zero()
        idxs = rng.integers(0, 128, size=60).astype(np.int64)
        deltas = np.ones(60, dtype=np.int64)
        sampler.update_many(idxs, deltas)
        assert not sampler.is_zero()
        got = sampler.sample()
        assert got in set(idxs.tolist())
        sampler.update_many(idxs, -deltas)
        assert sampler.is_zero()
        assert sampler.sample() is None


# ---------------------------------------------------------------------------
# Cross-tier bit-identity (full matrix; needs both tiers)
# ---------------------------------------------------------------------------

def _op_snapshot(tier):
    """Pool state + every backend-op answer, computed on ``tier``."""
    kernels.set_tier(tier)
    rng = np.random.default_rng(11)
    randomness = SamplerRandomness(512, 6, rng)
    samplers = [L0Sampler(randomness) for _ in range(4)]
    for sampler in samplers:
        idxs = rng.integers(0, 512, size=300).astype(np.int64)
        deltas = rng.choice([-1, 1], size=300).astype(np.int64)
        sampler.update_many(idxs, deltas)
        sampler.update(int(idxs[0]), 1)  # scalar path too
    cells = np.stack([s.matrix.cells for s in samplers])
    cols = np.arange(4, dtype=np.int64) % randomness.columns
    zeros, found = query_cells(cells, cols, randomness)
    groups = [np.array([0, 2], dtype=np.int64),
              np.array([1], dtype=np.int64),
              np.array([], dtype=np.int64),
              np.array([3, 1, 0], dtype=np.int64)]
    gcols = np.arange(len(groups), dtype=np.int64) % randomness.columns
    gzeros, gfound = query_group_cells(cells, groups, gcols, randomness)
    szero, sfound = scan_group_cells(
        cells, np.array([0, 3], dtype=np.int64),
        np.arange(randomness.columns, dtype=np.int64), randomness)
    return {
        "cells": cells,
        "zeros": zeros, "found": found,
        "sample": sample_cells(cells, cols, randomness),
        "is_zero": is_zero_cells(cells),
        "gzeros": gzeros, "gfound": gfound,
        "zgroups": zero_group_cells(cells, groups),
        "scan": np.concatenate([[int(szero)], sfound]),
    }


@CROSS_TIER
class TestCrossTierMatrix:
    def test_backend_ops_bit_identical(self):
        a = _op_snapshot(TIERS[0])
        b = _op_snapshot(TIERS[1])
        for key in a:
            assert np.array_equal(a[key], b[key]), key

    def test_family_pool_bit_identical(self):
        pools = {}
        for tier in TIERS:
            kernels.set_tier(tier)
            family = SketchFamily(32, columns=4,
                                  rng=np.random.default_rng(0),
                                  backend="sequential")
            us = np.array([0, 1, 2, 3, 4, 5], dtype=np.int64)
            vs = np.array([6, 7, 8, 9, 10, 11], dtype=np.int64)
            family.apply_edges_bulk(us, vs,
                                    np.ones(6, dtype=np.int64))
            pools[tier] = (family.pool.cells.copy(),
                           family.pool.row_mass.copy())
        ref_cells, ref_mass = pools[TIERS[0]]
        for tier in TIERS[1:]:
            assert np.array_equal(pools[tier][0], ref_cells)
            assert np.array_equal(pools[tier][1], ref_mass)


def test_checkpoint_restore_across_tiers(tmp_path):
    """A checkpoint written on one tier restores bit-identically on
    every other (degenerates to same-tier roundtrip without numba)."""
    from repro import GraphSession, ins

    answers = {}
    kernels.set_tier(TIERS[0])
    with GraphSession(24, tasks=("connectivity",), seed=3) as session:
        session.apply_batch([ins(i, i + 1) for i in range(12)])
        session.checkpoint(str(tmp_path / "ck.pkl"))
        base = session.num_components()
    for tier in TIERS:
        kernels.set_tier(tier)
        with GraphSession.restore(str(tmp_path / "ck.pkl")) as restored:
            answers[tier] = restored.num_components()
    assert all(v == base for v in answers.values()), answers


def test_fault_respawn_rereads_tier_env(monkeypatch):
    """A respawned worker re-resolves REPRO_KERNELS from the current
    environment -- with numba present it lands on a different tier
    than its predecessor and answers stay bit-identical."""
    monkeypatch.setenv("REPRO_KERNELS", "numpy")
    backend = SharedMemoryBackend(
        num_workers=2, call_timeout=60.0, retries=2, backoff=0.0,
        faults=FaultPlan.parse("kill:w=1:n=1:op=apply", source="test"))
    try:
        # Workers spawned after this point resolve to the other tier
        # when one exists; the answers must not change either way.
        monkeypatch.setenv("REPRO_KERNELS", "auto")
        shm = SketchFamily(16, columns=4,
                           rng=np.random.default_rng(0),
                           backend=backend)
        seq = SketchFamily(16, columns=4,
                           rng=np.random.default_rng(0),
                           backend="sequential")
        rng = np.random.default_rng(42)
        us = rng.integers(0, 16, size=30).astype(np.int64)
        vs = (us + 1 + rng.integers(0, 14, size=30).astype(np.int64)) % 16
        keep = us != vs
        us, vs = us[keep], vs[keep]
        deltas = np.ones(us.shape[0], dtype=np.int64)
        shm.apply_edges_bulk(us, vs, deltas)
        seq.apply_edges_bulk(us, vs, deltas)
        assert backend.health_counters()["respawns"] >= 1
        assert np.array_equal(shm.pool.cells, seq.pool.cells)
        shm.detach_backend()
    finally:
        backend.close()


# ---------------------------------------------------------------------------
# Dispatcher semantics
# ---------------------------------------------------------------------------

class TestDispatcher:
    def test_registry_tables_cover_the_same_names(self):
        assert set(registry.numpy_table()) == set(registry.compiled_table())
        assert set(registry.numpy_table()) == set(kernels.kernel_names())

    def test_set_tier_rejects_unknown(self):
        with pytest.raises(SketchError, match="REPRO_KERNELS"):
            kernels.set_tier("cython")

    @pytest.mark.skipif(kernels.numba_available(),
                        reason="numba importable here")
    def test_set_tier_numba_raises_without_numba(self):
        with pytest.raises(SketchError, match="REPRO_KERNELS=numba"):
            kernels.set_tier("numba")

    def test_callers_follow_rebinds(self, monkeypatch):
        from repro.sketch import hashing

        seen = {}
        real = registry.numpy_table()["mulmod_many"]

        def spy(a, b):
            seen["hit"] = True
            return real(a, b)

        monkeypatch.setattr(kernels, "mulmod_many", spy)
        a = np.array([3], dtype=np.uint64)
        out = hashing.mulmod_many(a, a)
        assert seen.get("hit") and int(out[0]) == 9

    def test_active_tier_tracks_set_tier(self):
        kernels.set_tier("numpy")
        assert kernels.active_tier() == "numpy"
        assert "numpy" in kernels.available_tiers()

    def test_describe_reports_tier(self):
        text = SequentialBackend().describe()
        assert f"kernels={kernels.active_tier()}" in text


# ---------------------------------------------------------------------------
# Import-time env contract (subprocesses: the resolution is at import)
# ---------------------------------------------------------------------------

def _child(env_extra, code):
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    env.pop("REPRO_KERNELS", None)
    env.pop("REPRO_KERNELS_PROFILE", None)
    env.update(env_extra)
    return subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, env=env,
                          timeout=240)


class TestEnvContract:
    def test_invalid_value_raises_naming_the_variable(self):
        proc = _child({"REPRO_KERNELS": "fortran"},
                      "import repro.kernels")
        assert proc.returncode != 0
        assert "REPRO_KERNELS" in proc.stderr
        assert "SketchError" in proc.stderr

    def test_numpy_forced(self):
        proc = _child(
            {"REPRO_KERNELS": "numpy"},
            "import repro.kernels as k;"
            "print(k.active_tier(), k.counters()['auto_fallbacks'])")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == ["numpy", "0"]

    def test_auto_resolution(self):
        proc = _child(
            {"REPRO_KERNELS": "auto"},
            "import repro.kernels as k;"
            "print(k.active_tier(), k.counters()['auto_fallbacks'])")
        assert proc.returncode == 0, proc.stderr
        tier, fallbacks = proc.stdout.split()
        if kernels.numba_available():
            assert (tier, fallbacks) == ("numba", "0")
        else:
            # The silent-degrade contract: numpy, counter bumped.
            assert (tier, fallbacks) == ("numpy", "1")

    @pytest.mark.skipif(kernels.numba_available(),
                        reason="numba importable here")
    def test_numba_required_but_missing_raises(self):
        proc = _child({"REPRO_KERNELS": "numba"},
                      "import repro.kernels")
        assert proc.returncode != 0
        assert "REPRO_KERNELS=numba" in proc.stderr
        assert "numba" in proc.stderr

    def test_profile_env_populates_counters(self):
        proc = _child(
            {"REPRO_KERNELS_PROFILE": "1"},
            "import numpy as np\n"
            "from repro import kernels\n"
            "from repro.kernels import profile\n"
            "a = np.array([5], dtype=np.uint64)\n"
            "kernels.mulmod_many(a, a)\n"
            "c = profile.counters()\n"
            "print(c['kernel.mulmod_many_calls'],"
            "      c['kernel.mulmod_many_ns'] > 0)")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == ["1", "True"]


class TestProfileHooks:
    def test_disabled_timed_is_shared_noop(self):
        if profile.enabled():
            pytest.skip("profiling enabled in this environment")
        assert profile.timed("x") is profile.timed("y")

    def test_record_and_reset(self):
        profile.reset()
        profile.record("unit", 5)
        profile.record("unit", 7)
        assert profile.counters() == {"unit_ns": 12, "unit_calls": 2}
        profile.reset()
        assert profile.counters() == {}

    def test_wrap_accumulates(self):
        profile.reset()
        wrapped = profile.wrap("demo", lambda v: v + 1)
        assert wrapped(1) == 2 and wrapped(2) == 3
        counters = profile.counters()
        assert counters["kernel.demo_calls"] == 2
        assert counters["kernel.demo_ns"] >= 0
        profile.reset()
