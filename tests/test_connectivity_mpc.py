"""The headline algorithm (Theorem 1.1): correctness, rounds, memory."""

import numpy as np
import pytest

from tests.conftest import make_valid_batch
from repro.analysis import connectivity_total_memory_bound
from repro.baselines import DynamicConnectivityOracle
from repro.core import MPCConnectivity
from repro.errors import BatchTooLargeError, InvalidUpdateError
from repro.mpc import MPCConfig
from repro.types import dele, ins


def alg_components(alg, n):
    groups = {}
    for v in range(n):
        groups.setdefault(alg.components.id_of(v), set()).add(v)
    return sorted(tuple(sorted(g)) for g in groups.values())


class TestBatchValidation:
    def test_oversized_batch_rejected(self):
        config = MPCConfig(n=16, phi=0.5, seed=0)
        alg = MPCConnectivity(config, batch_limit=3)
        with pytest.raises(BatchTooLargeError):
            alg.apply_batch([ins(i, i + 1) for i in range(4)])

    def test_duplicate_insert_rejected(self):
        alg = MPCConnectivity(MPCConfig(n=8, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1)])
        with pytest.raises(InvalidUpdateError):
            alg.apply_batch([ins(1, 0)])

    def test_phantom_delete_rejected(self):
        alg = MPCConnectivity(MPCConfig(n=8, phi=0.5, seed=0))
        with pytest.raises(InvalidUpdateError):
            alg.apply_batch([dele(0, 1)])

    def test_empty_batch_ok(self):
        alg = MPCConnectivity(MPCConfig(n=8, phi=0.5, seed=0))
        snap = alg.apply_batch([])
        assert snap.batch_size == 0


class TestSemantics:
    def test_insert_only_components(self):
        alg = MPCConnectivity(MPCConfig(n=10, phi=0.5, seed=1))
        alg.apply_batch([ins(0, 1), ins(1, 2), ins(5, 6)])
        assert alg.connected(0, 2)
        assert not alg.connected(0, 5)
        assert alg.num_components() == 10 - 3

    def test_batch_chain_merge(self):
        """A batch whose edges chain many components at once."""
        alg = MPCConnectivity(MPCConfig(n=12, phi=0.5, seed=1))
        alg.apply_batch([ins(i, i + 1) for i in range(11)])
        assert alg.num_components() == 1
        sol = alg.query_spanning_forest()
        assert len(sol.edges) == 11

    def test_parallel_h_edges_become_non_tree(self):
        alg = MPCConnectivity(MPCConfig(n=8, phi=0.5, seed=1))
        alg.apply_batch([ins(0, 1)])
        alg.apply_batch([ins(2, 3)])
        # Two edges between the same pair of components: one tree edge.
        alg.apply_batch([ins(0, 2), ins(1, 3)])
        sol = alg.query_spanning_forest()
        assert len(sol.edges) == 3
        assert alg.num_components() == 5

    def test_deletion_with_replacement(self):
        alg = MPCConnectivity(MPCConfig(n=8, phi=0.5, seed=2))
        alg.apply_batch([ins(0, 1), ins(1, 2), ins(0, 2)])
        tree = set(alg.query_spanning_forest().edges)
        victim = sorted(tree)[0]
        alg.apply_batch([dele(*victim)])
        assert alg.connected(0, 2)
        assert alg.stats["replacement_edges"] >= 1

    def test_deletion_without_replacement_splits(self):
        alg = MPCConnectivity(MPCConfig(n=8, phi=0.5, seed=2))
        alg.apply_batch([ins(0, 1), ins(1, 2)])
        alg.apply_batch([dele(1, 2)])
        assert not alg.connected(0, 2)
        assert alg.connected(0, 1)

    def test_mixed_batch_insert_then_delete(self):
        alg = MPCConnectivity(MPCConfig(n=8, phi=0.5, seed=3))
        alg.apply_batch([ins(0, 1), ins(1, 2)])
        # One batch both inserts an edge and deletes a tree edge.
        alg.apply_batch([ins(0, 2), dele(0, 1)])
        assert alg.connected(0, 1)  # via 0-2-1
        assert alg.num_edges == 2

    def test_shatter_star_batch(self):
        n = 16
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=4))
        alg.apply_batch([ins(0, v) for v in range(1, n)])
        alg.apply_batch([dele(0, v) for v in range(1, n)])
        assert alg.num_components() == n


class TestRandomStreamsAgainstOracle:
    @pytest.mark.parametrize("seed", range(3))
    def test_churn_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        n = 40
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=seed))
        oracle = DynamicConnectivityOracle(n)
        live = set()
        for _ in range(30):
            batch = make_valid_batch(rng, n, live,
                                     size=int(rng.integers(1, 9)))
            alg.apply_batch(batch)
            oracle.apply_batch(batch)
            assert alg_components(alg, n) == oracle.component_sets()
            sol = alg.query_spanning_forest()
            assert len(sol.edges) == n - oracle.num_components()
            alg.forest.check_invariants()
        assert alg.stats["sketch_failures"] == 0


class TestResourceClaims:
    def test_rounds_constant_across_phases(self):
        rng = np.random.default_rng(1)
        n = 48
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=1))
        live = set()
        for _ in range(20):
            alg.apply_batch(make_valid_batch(rng, n, live, size=8))
        rounds = alg.rounds_per_phase()
        # Constant rounds: no phase takes more than a fixed budget,
        # and the spread is tiny (no dependence on graph size/history).
        assert max(rounds) <= 80
        assert max(rounds) - min(r for r in rounds if r > 0) <= 40

    def test_query_rounds_constant(self):
        alg = MPCConnectivity(MPCConfig(n=64, phi=0.5, seed=2))
        alg.apply_batch([ins(i, i + 1) for i in range(20)])
        _, metrics = alg.query_with_metrics()
        assert metrics.rounds <= 10

    def test_total_memory_within_theorem_bound(self):
        n = 128
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=3))
        rng = np.random.default_rng(0)
        live = set()
        for _ in range(10):
            alg.apply_batch(make_valid_batch(rng, n, live, size=16,
                                             delete_fraction=0.1))
        assert alg.total_memory_words() <= \
            connectivity_total_memory_bound(n)

    def test_memory_independent_of_m(self):
        """The ~O(n) claim: registered memory does not scale with the
        number of non-tree edges."""
        n = 64
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=4))
        rng = np.random.default_rng(2)
        live = set()
        alg.apply_batch(make_valid_batch(rng, n, live, size=10,
                                         delete_fraction=0.0))
        sparse_memory = alg.total_memory_words()
        for _ in range(25):
            alg.apply_batch(make_valid_batch(rng, n, live, size=16,
                                             delete_fraction=0.0))
        dense_memory = alg.total_memory_words()
        # Only the forest part (O(n)) may grow; sketches dominate.
        assert dense_memory <= sparse_memory + 4 * n

    def test_memory_breakdown_names(self):
        alg = MPCConnectivity(MPCConfig(n=16, phi=0.5, seed=0))
        breakdown = alg.memory_breakdown()
        assert {"sketches", "forest", "component-ids"} <= set(breakdown)


class TestStrictMode:
    def test_strict_raises_only_on_failure(self):
        # With default columns, ordinary streams do not fail.
        alg = MPCConnectivity(MPCConfig(n=16, phi=0.5, seed=5),
                              strict=True)
        alg.apply_batch([ins(0, 1), ins(1, 2), ins(0, 2)])
        alg.apply_batch([dele(0, 1)])
        assert alg.connected(0, 1)
