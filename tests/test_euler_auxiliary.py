"""Segment map and interval decomposition tests."""

import pytest

from repro.euler import (
    CutInterval,
    Segment,
    SegmentMap,
    nested_interval_decomposition,
    rotation_segments,
)


class TestSegment:
    def test_apply(self):
        seg = Segment(old_lo=3, old_hi=8, delta=10, new_tid=77)
        assert seg.covers(3) and seg.covers(7) and not seg.covers(8)
        assert seg.apply(4) == (77, 14)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Segment(5, 5, 0, 0)


class TestSegmentMap:
    def test_lookup_and_apply(self):
        smap = SegmentMap([
            Segment(0, 4, 100, 1),
            Segment(4, 10, -2, 2),
        ])
        assert smap.apply(0) == (1, 100)
        assert smap.apply(5) == (2, 3)
        assert smap.lookup(10) is None
        with pytest.raises(KeyError):
            smap.apply(10)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            SegmentMap([Segment(0, 5, 0, 0), Segment(4, 8, 0, 0)])

    def test_message_count(self):
        smap = SegmentMap([Segment(0, 1, 0, 0), Segment(1, 2, 0, 0)])
        assert smap.message_count == 2


class TestRotationSegments:
    def test_no_rotation_single_segment(self):
        segs = rotation_segments(10, 0, new_tid=3)
        assert len(segs) == 1
        assert SegmentMap(segs).apply(4) == (3, 4)

    def test_rotation_semantics(self):
        """Rotated position of p by k is (p - k) mod L."""
        length, k = 10, 4
        smap = SegmentMap(rotation_segments(length, k, new_tid=0))
        for p in range(length):
            _, new = smap.apply(p)
            assert new == (p - k) % length

    def test_empty_tour(self):
        assert rotation_segments(0, 0, 0) == []


class TestNestedDecomposition:
    def test_single_cut_leaf(self):
        # Tour of a 2-vertex tree: positions 0,1 are the cut edge itself.
        comps = nested_interval_decomposition(
            2, [CutInterval(0, 1, child=1, edge=(0, 1))], top_root=0
        )
        assert all(c.length == 0 for c in comps)

    def test_single_cut_middle(self):
        # Path 0-1-2 rooted at 0: tour (0,1)(1,2)(2,1)(1,0), cut {0,1}
        # => interval [0,3]; severed subtree keeps positions 1..2.
        comps = nested_interval_decomposition(
            4, [CutInterval(0, 3, child=1, edge=(0, 1))], top_root=0
        )
        child = next(c for c in comps if c.root == 1)
        top = next(c for c in comps if c.root == 0)
        assert child.fragments == [(1, 2)]
        assert top.fragments == []

    def test_sibling_intervals(self):
        comps = nested_interval_decomposition(
            12,
            [CutInterval(1, 4, child=10, edge=(0, 10)),
             CutInterval(6, 9, child=20, edge=(0, 20))],
            top_root=0,
        )
        by_root = {c.root: c for c in comps}
        assert by_root[10].fragments == [(2, 3)]
        assert by_root[20].fragments == [(7, 8)]
        assert by_root[0].fragments == [(0, 0), (5, 5), (10, 11)]

    def test_nested_intervals(self):
        comps = nested_interval_decomposition(
            10,
            [CutInterval(0, 9, child=1, edge=(0, 1)),
             CutInterval(3, 6, child=2, edge=(1, 2))],
            top_root=0,
        )
        by_root = {c.root: c for c in comps}
        assert by_root[0].fragments == []
        assert by_root[1].fragments == [(1, 2), (7, 8)]
        assert by_root[2].fragments == [(4, 5)]

    def test_fragment_count_linear_in_cuts(self):
        intervals = [CutInterval(2 * i, 2 * i + 1, child=i, edge=(0, i))
                     for i in range(1, 20)]
        comps = nested_interval_decomposition(50, intervals, top_root=0)
        total_fragments = sum(len(c.fragments) for c in comps)
        assert total_fragments <= 2 * len(intervals) + 1

    def test_crossing_intervals_rejected(self):
        with pytest.raises(ValueError):
            nested_interval_decomposition(
                10,
                [CutInterval(0, 5, child=1, edge=(0, 1)),
                 CutInterval(3, 8, child=2, edge=(0, 2))],
                top_root=0,
            )

    def test_lengths_partition_tour(self):
        intervals = [CutInterval(1, 6, child=5, edge=(0, 5)),
                     CutInterval(2, 4, child=7, edge=(5, 7))]
        comps = nested_interval_decomposition(8, intervals, top_root=0)
        covered = sum(c.length for c in comps)
        # Total minus the 2 positions per removed edge.
        assert covered == 8 - 2 * len(intervals)
