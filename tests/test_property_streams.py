"""Property-based end-to-end tests: arbitrary valid update streams.

Hypothesis drives the headline invariant from every angle it can
generate: after ANY sequence of valid batches, the maintained component
structure equals the oracle's, the spanning forest is a real spanning
forest of the current graph, and determinism holds (same seed, same
stream, same everything).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import DynamicConnectivityOracle
from repro.core import MPCConnectivity, StreamingConnectivity
from repro.mpc import MPCConfig
from repro.types import Batch, dele, ins

N = 14


def stream_from_blueprint(blueprint):
    """Turn a hypothesis blueprint into a list of valid batches.

    ``blueprint`` is a list of batches; each batch is a list of
    (vertex_pair_index, prefer_delete) pairs.  Validity (no duplicate
    inserts, deletes of live edges only, one touch per edge per batch)
    is enforced during materialisation, so all generated streams are
    legal by construction.
    """
    pairs = [(u, v) for u in range(N) for v in range(u + 1, N)]
    live = set()
    batches = []
    for raw_batch in blueprint:
        updates = []
        touched = set()
        for pair_index, prefer_delete in raw_batch:
            edge = pairs[pair_index % len(pairs)]
            if edge in touched:
                continue
            touched.add(edge)
            if edge in live and prefer_delete:
                live.discard(edge)
                updates.append(dele(*edge))
            elif edge not in live:
                live.add(edge)
                updates.append(ins(*edge))
        batches.append(Batch(updates))
    return batches


blueprint_strategy = st.lists(
    st.lists(
        st.tuples(st.integers(0, 200), st.booleans()),
        min_size=1, max_size=8,
    ),
    min_size=1, max_size=12,
)


class TestConnectivityProperties:
    @settings(max_examples=40, deadline=None)
    @given(blueprint_strategy)
    def test_components_always_match_oracle(self, blueprint):
        batches = stream_from_blueprint(blueprint)
        alg = MPCConnectivity(MPCConfig(n=N, phi=0.5, seed=3))
        oracle = DynamicConnectivityOracle(N)
        for batch in batches:
            alg.apply_batch(batch)
            oracle.apply_batch(batch)
        groups = {}
        for v in range(N):
            groups.setdefault(alg.components.id_of(v), set()).add(v)
        assert sorted(tuple(sorted(g)) for g in groups.values()) == \
            oracle.component_sets()
        forest = alg.query_spanning_forest()
        live = set(oracle.edges())
        assert all(edge in live for edge in forest.edges)
        assert len(forest.edges) == N - oracle.num_components()
        alg.forest.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(blueprint_strategy)
    def test_streaming_reference_agrees_with_mpc(self, blueprint):
        batches = stream_from_blueprint(blueprint)
        mpc = MPCConnectivity(MPCConfig(n=N, phi=0.5, seed=5))
        seq = StreamingConnectivity(N, seed=6)
        for batch in batches:
            mpc.apply_batch(batch)
            for up in batch.insertions:
                seq.insert(up.u, up.v)
            for up in batch.deletions:
                seq.delete(up.u, up.v)
        for u in range(N):
            for v in range(u + 1, N):
                assert mpc.connected(u, v) == seq.connected(u, v)

    @settings(max_examples=15, deadline=None)
    @given(blueprint_strategy, st.integers(0, 10 ** 6))
    def test_determinism(self, blueprint, seed):
        batches = stream_from_blueprint(blueprint)

        def run():
            alg = MPCConnectivity(MPCConfig(n=N, phi=0.5, seed=seed))
            for batch in batches:
                alg.apply_batch(batch)
            return (
                sorted(alg.query_spanning_forest().edges),
                [p.rounds for p in alg.phases],
                alg.total_memory_words(),
            )

        assert run() == run()

    @settings(max_examples=20, deadline=None)
    @given(blueprint_strategy)
    def test_rounds_never_depend_on_history_length(self, blueprint):
        """Constant-rounds means no phase can cost more than the fixed
        per-phase budget no matter what came before."""
        batches = stream_from_blueprint(blueprint)
        alg = MPCConnectivity(MPCConfig(n=N, phi=0.5, seed=8))
        for batch in batches:
            snapshot = alg.apply_batch(batch)
            assert snapshot.rounds <= 80
