"""Bulk ingestion must be bit-identical to the sequential path.

Every layer of the vectorized pipeline -- limb-arithmetic field
evaluation, level hashing, ``z^idx`` powers, recovery-cell scatters,
per-vertex bulk updates, and the family-level group-by-endpoint router
-- is checked against its scalar counterpart on random update
sequences: same recovery state (materialized ``W``/``S``/``F``), same
``sample()`` / ``is_zero()`` outcomes, and mergeability preserved.
"""

import numpy as np
import pytest

from repro.core.connectivity import MPCConnectivity
from repro.mpc.config import MPCConfig
from repro.sketch import (
    CACHE_LIMIT,
    MERSENNE_P,
    FourWiseHash,
    KWiseHash,
    L0Sampler,
    PairwiseHash,
    RecoveryMatrix,
    SamplerRandomness,
    SketchFamily,
    addmod_many,
    edge_sign,
    edge_signs,
    encode_edge,
    encode_edges,
    mulmod_many,
    trailing_zeros,
    trailing_zeros_many,
)
from repro.sketch.sparse_recovery import RENORM_MASS, _renormalize_limbs
from repro.streams import ChurnStream


def random_edges(n, count, seed):
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < count:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    return sorted(edges)


def assert_same_state(a: RecoveryMatrix, b: RecoveryMatrix):
    assert np.array_equal(a.W, b.W)
    assert np.array_equal(a.S, b.S)
    assert np.array_equal(a.F, b.F)


class TestFieldArithmetic:
    def test_mulmod_matches_python(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, MERSENNE_P, 2000, dtype=np.uint64)
        b = rng.integers(0, MERSENNE_P, 2000, dtype=np.uint64)
        got = mulmod_many(a, b)
        expected = [(int(x) * int(y)) % MERSENNE_P for x, y in zip(a, b)]
        assert [int(g) for g in got] == expected

    def test_mulmod_extremes(self):
        extremes = np.array(
            [0, 1, 2, MERSENNE_P - 1, MERSENNE_P - 2, (1 << 32) - 1,
             1 << 32, (1 << 60) + 12345],
            dtype=np.uint64,
        )
        a, b = np.meshgrid(extremes, extremes)
        got = mulmod_many(a.ravel(), b.ravel())
        expected = [(int(x) * int(y)) % MERSENNE_P
                    for x, y in zip(a.ravel(), b.ravel())]
        assert [int(g) for g in got] == expected

    def test_addmod_matches_python(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, MERSENNE_P, 500, dtype=np.uint64)
        b = rng.integers(0, MERSENNE_P, 500, dtype=np.uint64)
        got = addmod_many(a, b)
        expected = [(int(x) + int(y)) % MERSENNE_P for x, y in zip(a, b)]
        assert [int(g) for g in got] == expected

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_field_value_many_matches_scalar(self, k, rng):
        h = KWiseHash(k, 1000, rng)
        xs = list(range(0, 5000, 37)) + [0, 1, MERSENNE_P - 1]
        got = h.field_value_many(np.array(xs, dtype=np.int64) % MERSENNE_P)
        assert [int(g) for g in got] == [h.field_value(x % MERSENNE_P)
                                         for x in xs]

    def test_many_matches_scalar_for_all_degrees(self, rng):
        for hash_cls in (PairwiseHash, FourWiseHash):
            h = hash_cls(97, rng)
            xs = list(range(300))
            assert h.many(xs) == [h(x) for x in xs]

    def test_trailing_zeros_many_matches_scalar(self):
        xs = np.array([0, 1, 2, 3, 4, 12, 96, 1 << 20, 1 << 62],
                      dtype=np.uint64)
        for cap in (1, 5, 19, 63):
            got = trailing_zeros_many(xs, cap)
            assert [int(g) for g in got] == [trailing_zeros(int(x), cap)
                                             for x in xs]


class TestEdgeCodingBulk:
    def test_encode_edges_matches_scalar(self):
        n = 200
        edges = random_edges(n, 500, seed=3)
        us = np.array([u for u, _ in edges])
        vs = np.array([v for _, v in edges])
        got = encode_edges(n, vs, us)  # reversed order on purpose
        assert [int(g) for g in got] == [encode_edge(n, u, v)
                                         for u, v in edges]

    def test_encode_edges_rejects_bad_input(self):
        with pytest.raises(ValueError):
            encode_edges(10, np.array([1]), np.array([1]))
        with pytest.raises(ValueError):
            encode_edges(10, np.array([0]), np.array([10]))
        with pytest.raises(ValueError):
            encode_edges(10, np.array([-1]), np.array([3]))

    def test_edge_signs_matches_scalar(self):
        us = np.array([5, 5, 5, 0])
        vs = np.array([1, 9, 7, 5])
        got = edge_signs(5, us, vs)
        assert [int(g) for g in got] == [edge_sign(5, int(u), int(v))
                                         for u, v in zip(us, vs)]

    def test_edge_signs_rejects_non_endpoint(self):
        with pytest.raises(ValueError):
            edge_signs(3, np.array([1]), np.array([2]))


class TestRandomnessBulk:
    def test_levels_of_many_matches_scalar(self, rng):
        rnd = SamplerRandomness(10000, 7, rng)
        idxs = np.arange(0, 10000, 13, dtype=np.int64)
        got = rnd.levels_of_many(idxs)
        for row, idx in zip(got, idxs):
            assert np.array_equal(row, rnd.levels_of(int(idx)))

    def test_zpow_many_matches_scalar(self, rng):
        rnd = SamplerRandomness(10000, 3, rng)
        idxs = np.array([0, 1, 2, 5, 9999, 4096, 7777], dtype=np.int64)
        got = rnd.zpow_many(idxs)
        assert [int(g) for g in got] == [rnd.zpow(int(i)) for i in idxs]

    def test_caches_are_bounded(self, rng):
        rnd = SamplerRandomness(CACHE_LIMIT * 4, 2, rng)
        for idx in range(CACHE_LIMIT + 500):
            rnd.zpow(idx)
            rnd.levels_of(idx)
        assert len(rnd._zpow_cache) <= CACHE_LIMIT
        assert len(rnd._levels_cache) <= CACHE_LIMIT
        # Evicted entries are simply recomputed, not corrupted.
        assert rnd.zpow(0) == pow(rnd.z, 0, MERSENNE_P)


class TestRecoveryMatrixBulk:
    def test_apply_many_matches_apply(self, rng):
        rnd = SamplerRandomness(5000, 5, rng)
        stream_rng = np.random.default_rng(7)
        idxs = stream_rng.integers(0, 5000, 300).astype(np.int64)
        deltas = stream_rng.choice([-1, 1], 300).astype(np.int64)
        seq = RecoveryMatrix(rnd.columns, rnd.levels)
        for idx, delta in zip(idxs, deltas):
            seq.apply(rnd.levels_of(int(idx)), int(idx), int(delta),
                      rnd.zpow(int(idx)))
        bulk = RecoveryMatrix(rnd.columns, rnd.levels)
        bulk.apply_many(rnd.levels_of_many(idxs), idxs, deltas,
                        rnd.zpow_many(idxs))
        assert_same_state(seq, bulk)
        for col in range(rnd.columns):
            assert (seq.recover(col, 5000, rnd.fingerprint_ok)
                    == bulk.recover(col, 5000, rnd.fingerprint_ok))

    def test_renormalization_preserves_values(self, rng):
        rnd = SamplerRandomness(100, 3, rng)
        m = RecoveryMatrix(rnd.columns, rnd.levels)
        for idx in (3, 14, 15, 92):
            m.apply(rnd.levels_of(idx), idx, 1, rnd.zpow(idx))
        before = m.F.copy()
        _renormalize_limbs(m.Flo, m.Fhi)
        assert np.array_equal(m.F, before)
        assert int(m.Flo.max()) < (1 << 32) and int(m.Flo.min()) >= 0

    def test_mass_triggers_renormalization(self, rng):
        rnd = SamplerRandomness(100, 2, rng)
        m = RecoveryMatrix(rnd.columns, rnd.levels)
        m._f_mass = RENORM_MASS  # pretend a long stream already ran
        m.apply(rnd.levels_of(5), 5, 1, rnd.zpow(5))
        assert m._f_mass == 1  # renormalized and reset
        assert m.recover(0, 100, rnd.fingerprint_ok) == 5


class TestL0SamplerBulk:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_update_many_matches_updates(self, seed, rng):
        rnd = SamplerRandomness(2000, 6, rng)
        stream_rng = np.random.default_rng(seed)
        idxs = stream_rng.integers(0, 2000, 250).astype(np.int64)
        deltas = stream_rng.choice([-1, 0, 1], 250).astype(np.int64)
        seq = L0Sampler(rnd)
        for idx, delta in zip(idxs, deltas):
            seq.update(int(idx), int(delta))
        bulk = L0Sampler(rnd)
        bulk.update_many(idxs, deltas)
        assert_same_state(seq.matrix, bulk.matrix)
        assert seq.sample() == bulk.sample()
        assert seq.is_zero() == bulk.is_zero()

    def test_update_many_rejects_out_of_universe(self, rng):
        sampler = L0Sampler(SamplerRandomness(100, 2, rng))
        with pytest.raises(ValueError):
            sampler.update_many(np.array([100]), np.array([1]))
        with pytest.raises(ValueError):
            sampler.update_many(np.array([-1]), np.array([1]))

    def test_mergeability_preserved(self, rng):
        """update_many then merge_from == interleaved single updates."""
        rnd = SamplerRandomness(1000, 4, rng)
        stream_rng = np.random.default_rng(11)
        part_a = stream_rng.integers(0, 1000, 80).astype(np.int64)
        part_b = stream_rng.integers(0, 1000, 80).astype(np.int64)
        signs_a = stream_rng.choice([-1, 1], 80).astype(np.int64)
        signs_b = stream_rng.choice([-1, 1], 80).astype(np.int64)
        a = L0Sampler(rnd)
        a.update_many(part_a, signs_a)
        b = L0Sampler(rnd)
        b.update_many(part_b, signs_b)
        a.merge_from(b)
        interleaved = L0Sampler(rnd)
        for i in range(80):
            interleaved.update(int(part_a[i]), int(signs_a[i]))
            interleaved.update(int(part_b[i]), int(signs_b[i]))
        assert_same_state(a.matrix, interleaved.matrix)
        assert a.sample() == interleaved.sample()

    def test_cancellation_through_bulk_path(self, rng):
        rnd = SamplerRandomness(500, 4, rng)
        sampler = L0Sampler(rnd)
        idxs = np.arange(0, 500, 5, dtype=np.int64)
        sampler.update_many(idxs, np.ones(len(idxs), dtype=np.int64))
        sampler.update_many(idxs, -np.ones(len(idxs), dtype=np.int64))
        assert sampler.is_zero()
        assert sampler.matrix.is_entirely_zero()


class TestVertexAndFamilyBulk:
    def test_apply_edges_matches_apply_edge(self):
        n = 64
        family = SketchFamily(n, columns=5,
                              rng=np.random.default_rng(3))
        twin = SketchFamily(n, columns=5, rng=np.random.default_rng(3))
        edges = [(0, v) for v in range(1, 40)]
        seq = family.new_vertex_sketch(0)
        for u, v in edges:
            seq.apply_edge(u, v, +1)
        bulk = twin.new_vertex_sketch(0)
        bulk.apply_edges(np.array([u for u, _ in edges]),
                         np.array([v for _, v in edges]),
                         np.ones(len(edges), dtype=np.int64))
        assert_same_state(seq.sampler.matrix, bulk.sampler.matrix)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_family_router_matches_per_edge(self, seed):
        n = 96
        count = 150
        family_seq = SketchFamily(n, columns=6,
                                  rng=np.random.default_rng(17))
        family_bulk = SketchFamily(n, columns=6,
                                   rng=np.random.default_rng(17))
        sk = {v: family_seq.new_vertex_sketch(v) for v in range(n)}
        _ = {v: family_bulk.new_vertex_sketch(v) for v in range(n)}
        edges = random_edges(n, count, seed=seed)
        deltas_rng = np.random.default_rng(seed + 100)
        # Insert everything, then delete a random half: ingestion must
        # agree through churn, not just fresh inserts.
        half = deltas_rng.permutation(count)[: count // 2]
        us = np.array([u for u, _ in edges])
        vs = np.array([v for _, v in edges])
        for u, v in edges:
            sk[u].apply_edge(u, v, +1)
            sk[v].apply_edge(u, v, +1)
        for i in half:
            u, v = edges[int(i)]
            sk[u].apply_edge(u, v, -1)
            sk[v].apply_edge(u, v, -1)
        family_bulk.apply_edges_bulk(us, vs,
                                     np.ones(count, dtype=np.int64))
        family_bulk.apply_edges_bulk(us[half], vs[half],
                                     -np.ones(len(half), dtype=np.int64))
        assert np.array_equal(family_seq.pool.cells,
                              family_bulk.pool.cells)

    def test_router_is_order_independent(self):
        n = 32
        fam_a = SketchFamily(n, columns=4, rng=np.random.default_rng(9))
        fam_b = SketchFamily(n, columns=4, rng=np.random.default_rng(9))
        edges = random_edges(n, 60, seed=2)
        us = np.array([u for u, _ in edges])
        vs = np.array([v for _, v in edges])
        ones = np.ones(len(edges), dtype=np.int64)
        fam_a.apply_edges_bulk(us, vs, ones)
        perm = np.random.default_rng(4).permutation(len(edges))
        fam_b.apply_edges_bulk(us[perm], vs[perm], ones)
        assert np.array_equal(fam_a.pool.cells, fam_b.pool.cells)

    def test_pool_mass_is_tracked_per_row(self):
        """Detached copies carry their own row's mass, not the pool's
        total, so component merges don't renormalize on every call."""
        fam = SketchFamily(16, columns=3, rng=np.random.default_rng(1))
        sketches = {v: fam.new_vertex_sketch(v) for v in range(16)}
        fam.apply_edges_bulk(np.array([0, 0]), np.array([1, 2]),
                             np.array([1, 1], dtype=np.int64))
        assert int(fam.pool.row_mass[0]) == 2  # endpoint of both edges
        assert int(fam.pool.row_mass[1]) == 1
        assert int(fam.pool.row_mass[3]) == 0
        assert fam.pool.f_mass == 4            # one per (edge, endpoint)
        dup = sketches[0].sampler.copy()
        assert dup.matrix._f_mass == 2

    def test_router_empty_batch_is_noop(self):
        fam = SketchFamily(8, columns=2, rng=np.random.default_rng(0))
        fam.apply_edges_bulk(np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64))
        assert not fam.pool.cells.any()


class TestAlgorithmLevelEquivalence:
    def test_mpc_connectivity_sketches_match_manual_per_edge(self):
        """Batch phases leave exactly the per-edge sketch state.

        The twin family reproduces the algorithm's sketch randomness
        (the cluster rng seeded with ``config.seed`` feeds the family
        first), then replays every update through the scalar
        ``apply_edge`` path.
        """
        config = MPCConfig(n=48, phi=0.5, seed=5)
        alg = MPCConnectivity(config)
        twin = SketchFamily(48, columns=alg.family.columns,
                            rng=np.random.default_rng(config.seed))
        replay = {v: twin.new_vertex_sketch(v) for v in range(48)}
        stream = ChurnStream(48, seed=3, delete_fraction=0.3,
                             target_edges=96)
        for batch in stream.batches(6, 16):
            alg.apply_batch(batch)
            for up in batch:
                delta = 1 if up.is_insert else -1
                replay[up.u].apply_edge(up.u, up.v, delta)
                replay[up.v].apply_edge(up.u, up.v, delta)
        assert np.array_equal(alg.family.pool.cells, twin.pool.cells)

    def test_streaming_preload_matches_inserts(self):
        from repro.core.streaming_connectivity import StreamingConnectivity

        edges = random_edges(40, 70, seed=8)
        a = StreamingConnectivity(40, columns=6, seed=2)
        for u, v in edges:
            a.insert(u, v)
        b = StreamingConnectivity(40, columns=6, seed=2)
        b.preload(edges)
        assert np.array_equal(a.family.pool.cells, b.family.pool.cells)
        assert a.num_components() == b.num_components()
        assert sorted(a.query().edges) == sorted(b.query().edges)
        # Streaming continues normally after a preload.
        u, v = edges[0]
        a.delete(u, v)
        b.delete(u, v)
        assert np.array_equal(a.family.pool.cells, b.family.pool.cells)
        assert a.num_components() == b.num_components()

    def test_streaming_preload_requires_fresh_instance(self):
        from repro.core.streaming_connectivity import StreamingConnectivity
        from repro.errors import InvalidUpdateError

        alg = StreamingConnectivity(10, columns=4, seed=0)
        alg.insert(0, 1)
        with pytest.raises(InvalidUpdateError):
            alg.preload([(2, 3)])
