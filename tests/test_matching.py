"""Approximate-matching tests (Theorems 8.1, 8.2, 8.5, 8.6)."""

import numpy as np
import pytest

from tests.conftest import make_valid_batch
from repro.baselines import maximum_matching_size
from repro.core import (
    AKLYMatching,
    GreedyMatchingInsertOnly,
    MatchingSizeEstimator,
)
from repro.errors import ConfigurationError, InvalidUpdateError
from repro.mpc import MPCConfig
from repro.streams import as_batches, planted_matching_insertions
from repro.types import dele, ins


class TestGreedyInsertOnly:
    def test_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            GreedyMatchingInsertOnly(MPCConfig(n=8, phi=0.5), alpha=0.5)

    def test_deletions_rejected(self):
        alg = GreedyMatchingInsertOnly(MPCConfig(n=8, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1)])
        with pytest.raises(InvalidUpdateError):
            alg.apply_batch([dele(0, 1)])

    def test_greedy_is_maximal_below_cap(self):
        alg = GreedyMatchingInsertOnly(MPCConfig(n=16, phi=0.5, seed=0),
                                       alpha=1.0)
        alg.apply_batch([ins(0, 1), ins(2, 3), ins(1, 2)])
        assert alg.matching_size() == 2

    def test_cap_respected(self):
        n = 32
        alg = GreedyMatchingInsertOnly(MPCConfig(n=n, phi=0.5, seed=0),
                                       alpha=8.0)
        updates = [ins(2 * i, 2 * i + 1) for i in range(n // 2)]
        for batch in as_batches(updates, 4):
            alg.apply_batch(batch)
        assert alg.matching_size() <= alg.cap

    @pytest.mark.parametrize("alpha", [1.0, 2.0, 4.0])
    def test_approximation_ratio(self, alpha):
        n = 48
        alg = GreedyMatchingInsertOnly(MPCConfig(n=n, phi=0.5, seed=1),
                                       alpha=alpha)
        updates = planted_matching_insertions(n, size=20, noise=30, seed=3)
        for batch in as_batches(updates, 8):
            alg.apply_batch(batch)
        opt = maximum_matching_size(n, [up.edge for up in updates])
        got = alg.matching_size()
        assert got >= 1
        # Theorem 8.1: O(alpha)-approximation (constant 2 from greedy).
        assert opt / got <= 2 * alpha + 1

    def test_memory_is_matching_only(self):
        alg = GreedyMatchingInsertOnly(MPCConfig(n=64, phi=0.5, seed=0),
                                       alpha=4.0)
        alg.apply_batch([ins(0, 1), ins(2, 3)])
        assert alg.total_memory_words() <= 2 * alg.cap


class TestAKLYDynamic:
    def test_matching_is_valid(self):
        rng = np.random.default_rng(2)
        n = 48
        alg = AKLYMatching(MPCConfig(n=n, phi=0.5, seed=2), alpha=2.0)
        live = set()
        for _ in range(10):
            alg.apply_batch(make_valid_batch(rng, n, live, size=6))
        matched = set()
        for u, v in alg.matching().edges:
            assert (min(u, v), max(u, v)) in live
            assert u not in matched and v not in matched
            matched.add(u)
            matched.add(v)

    def test_tracks_deletions(self):
        n = 32
        alg = AKLYMatching(MPCConfig(n=n, phi=0.5, seed=3), alpha=2.0)
        updates = [ins(2 * i, 2 * i + 1) for i in range(16)]
        alg.apply_batch(updates)
        before = alg.matching_size()
        alg.apply_batch([up.inverse() for up in updates])
        assert alg.matching_size() == 0
        assert before >= 0

    def test_ratio_on_planted_matching(self):
        n = 64
        alpha = 2.0
        alg = AKLYMatching(MPCConfig(n=n, phi=0.5, seed=4), alpha=alpha)
        updates = planted_matching_insertions(n, size=24, noise=20, seed=5)
        for batch in as_batches(updates, 8):
            alg.apply_batch(batch)
        opt = maximum_matching_size(n, [up.edge for up in updates])
        got = alg.matching_size()
        assert got >= 1
        # O(alpha) with the construction's constants (bipartition /2,
        # maximal /2, hash collisions): generous but finite envelope.
        assert opt / got <= 8 * alpha

    def test_memory_decreases_with_alpha(self):
        n = 64
        small_alpha = AKLYMatching(MPCConfig(n=n, phi=0.5, seed=0),
                                   alpha=2.0)
        big_alpha = AKLYMatching(MPCConfig(n=n, phi=0.5, seed=0),
                                 alpha=8.0)
        small_alpha.apply_batch([ins(0, 1)])
        big_alpha.apply_batch([ins(0, 1)])
        assert (big_alpha.total_memory_words()
                < small_alpha.total_memory_words())


class TestSizeEstimator:
    def test_alpha_cap(self):
        with pytest.raises(ConfigurationError):
            MatchingSizeEstimator(MPCConfig(n=16, phi=0.5), alpha=8.0)

    @pytest.mark.parametrize("dynamic", [False, True])
    def test_estimate_tracks_planted_opt(self, dynamic):
        n = 128
        alpha = 2.0
        alg = MatchingSizeEstimator(MPCConfig(n=n, phi=0.5, seed=6),
                                    alpha=alpha, dynamic=dynamic)
        size = 32
        updates = planted_matching_insertions(n, size=size, noise=0,
                                              seed=7)
        for batch in as_batches(updates, 16):
            alg.apply_batch(batch)
        est = alg.estimate()
        assert est >= 1
        # O(alpha)-approximation envelope (generous constants).
        assert size / est <= 8 * alpha
        assert est / size <= 8 * alpha

    def test_insertion_only_rejects_deletes(self):
        alg = MatchingSizeEstimator(MPCConfig(n=16, phi=0.5, seed=0),
                                    alpha=2.0, dynamic=False)
        alg.apply_batch([ins(0, 1)])
        with pytest.raises(InvalidUpdateError):
            alg.apply_batch([dele(0, 1)])

    def test_dynamic_handles_deletes(self):
        n = 64
        alg = MatchingSizeEstimator(MPCConfig(n=n, phi=0.5, seed=8),
                                    alpha=2.0, dynamic=True)
        updates = [ins(2 * i, 2 * i + 1) for i in range(24)]
        alg.apply_batch(updates)
        high = alg.estimate()
        alg.apply_batch([up.inverse() for up in updates])
        low = alg.estimate()
        assert low <= high

    def test_empty_graph_estimates_zero(self):
        alg = MatchingSizeEstimator(MPCConfig(n=16, phi=0.5, seed=0),
                                    alpha=2.0)
        alg.apply_batch([])
        assert alg.estimate() == 0.0

    def test_dynamic_memory_shrinks_with_alpha(self):
        n = 256
        small = MatchingSizeEstimator(MPCConfig(n=n, phi=0.5, seed=0),
                                      alpha=2.0, dynamic=True)
        large = MatchingSizeEstimator(MPCConfig(n=n, phi=0.5, seed=0),
                                      alpha=8.0, dynamic=True)
        small.apply_batch([ins(0, 1)])
        large.apply_batch([ins(0, 1)])
        assert large.total_memory_words() < small.total_memory_words()
