"""Execution-backend matrix: parity, spawn-safety, crash surfacing.

The contract under test (see :mod:`repro.mpc.backend`): the
``shared_memory`` backend is *bit-identical* to the ``sequential`` one
-- same pool cells after any mix of bulk and scalar updates, same query
answers, and therefore identical end-to-end behaviour of every
algorithm built on the sketches -- while worker failures surface as
:class:`~repro.errors.SketchError` instead of hangs or corruption.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from tests.conftest import make_valid_batch
from repro.baselines.agm_static import AGMStaticConnectivity
from repro.core import MPCConnectivity
from repro.core.bipartiteness import DynamicBipartiteness
from repro.core.msf_approx import ApproxMSF
from repro.core.streaming_connectivity import StreamingConnectivity
from repro.errors import ConfigurationError, SketchError
from repro.mpc import MPCConfig
from repro.mpc.backend import (
    SequentialBackend,
    SharedMemoryBackend,
    default_worker_count,
    get_backend,
    resolve_backend,
)
from repro.sketch import (
    FourWiseHash,
    L0Sampler,
    PairwiseHash,
    SamplerRandomness,
    SketchFamily,
)

WORKERS = 2


@pytest.fixture(scope="module")
def shared_backend():
    """The process-wide 2-worker backend (shared across tests so the
    suite spawns one fleet, not one per test)."""
    return get_backend("shared_memory", workers=WORKERS)


def _seq_config(n: int, seed: int = 7, **kw) -> MPCConfig:
    return MPCConfig(n=n, seed=seed, backend="sequential", **kw)


def _shm_config(n: int, seed: int = 7, **kw) -> MPCConfig:
    return MPCConfig(n=n, seed=seed, backend="shared_memory",
                     backend_workers=WORKERS, **kw)


# ---------------------------------------------------------------------------
# Satellite: spawn-safe randomness -- (seed, params) round trips
# ---------------------------------------------------------------------------

class TestSpawnSafeRandomness:
    def test_kwise_hash_pickle_roundtrip(self, rng):
        for cls in (PairwiseHash, FourWiseHash):
            original = cls(1 << 12, rng)
            clone = pickle.loads(pickle.dumps(original))
            assert type(clone) is cls
            assert clone.coeffs == original.coeffs
            assert clone.range_size == original.range_size
            xs = [0, 1, 17, (1 << 40) + 3]
            assert [clone(x) for x in xs] == [original(x) for x in xs]

    def test_kwise_hash_from_params(self, rng):
        original = PairwiseHash(64, rng)
        rebuilt = PairwiseHash.from_params(64, original.coeffs)
        assert rebuilt.field_value(12345) == original.field_value(12345)
        many = np.arange(50, dtype=np.int64)
        assert np.array_equal(rebuilt.field_value_many(many),
                              original.field_value_many(many))

    def test_randomness_roundtrip_is_bit_identical(self, rng):
        original = SamplerRandomness(universe=5000, columns=6, rng=rng)
        clone = pickle.loads(pickle.dumps(original))
        assert clone.params() == original.params()
        idxs = np.array([0, 1, 2, 999, 4999], dtype=np.int64)
        assert np.array_equal(clone.levels_of_many(idxs),
                              original.levels_of_many(idxs))
        assert np.array_equal(clone.zpow_many(idxs),
                              original.zpow_many(idxs))
        for idx in idxs.tolist():
            assert np.array_equal(clone.levels_of(idx),
                                  original.levels_of(idx))
            assert clone.zpow(idx) == original.zpow(idx)
        ws = np.array([1, -2, 3, 7, 1], dtype=np.int64)
        fs = original.zpow_many(idxs)
        assert np.array_equal(clone.fingerprint_ok_many(idxs, ws, fs),
                              original.fingerprint_ok_many(idxs, ws, fs))

    def test_from_params_draws_no_randomness(self, rng):
        original = SamplerRandomness(universe=300, columns=4, rng=rng)
        rebuilt = SamplerRandomness.from_params(*original.params())
        assert rebuilt.params() == original.params()
        # Fresh caches, same behaviour.
        assert len(rebuilt._zpow_cache) == 0
        assert rebuilt.zpow(123) == original.zpow(123)

    def test_from_params_validates_columns(self):
        with pytest.raises(ValueError):
            SamplerRandomness.from_params(100, 3, 1, ((1, 2),))


# ---------------------------------------------------------------------------
# Backend construction / resolution
# ---------------------------------------------------------------------------

class TestBackendResolution:
    def test_sequential_is_shared_singleton(self):
        assert get_backend("sequential") is get_backend("sequential")
        assert isinstance(get_backend(None), SequentialBackend) or \
            get_backend(None).parallel  # env may force shared_memory

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend("gpu")
        with pytest.raises(ConfigurationError):
            MPCConfig(n=16, backend="gpu")

    def test_resolve_accepts_instances(self, shared_backend):
        assert resolve_backend(shared_backend) is shared_backend
        with pytest.raises(ConfigurationError):
            resolve_backend(42)

    def test_shared_cache_reuses_fleet(self, shared_backend):
        assert get_backend("shared_memory",
                           workers=WORKERS) is shared_backend
        assert get_backend("shm", workers=WORKERS) is shared_backend


# ---------------------------------------------------------------------------
# Pool-level parity: ingestion, scalar/bulk mixes, queries
# ---------------------------------------------------------------------------

def _family_pair(shared_backend, n=40, columns=6, seed=9):
    seq = SketchFamily(n, columns=columns,
                       rng=np.random.default_rng(seed),
                       backend="sequential")
    shm = SketchFamily(n, columns=columns,
                       rng=np.random.default_rng(seed),
                       backend=shared_backend)
    assert seq.randomness.params() == shm.randomness.params()
    return seq, shm


def _random_edges(n, k, seed=0):
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < k:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    edges = sorted(edges)
    us = np.array([u for u, _ in edges], dtype=np.int64)
    vs = np.array([v for _, v in edges], dtype=np.int64)
    return us, vs


class TestPoolParity:
    def test_bulk_ingestion_bit_identical(self, shared_backend):
        seq, shm = _family_pair(shared_backend)
        us, vs = _random_edges(40, 60)
        deltas = np.ones(60, dtype=np.int64)
        seq.apply_edges_bulk(us, vs, deltas)
        shm.apply_edges_bulk(us, vs, deltas)
        assert np.array_equal(seq.pool.cells, shm.pool.cells)
        assert np.array_equal(seq.pool.row_mass, shm.pool.row_mass)
        assert seq.pool.f_mass == shm.pool.f_mass

    def test_scalar_and_bulk_mix_bit_identical(self, shared_backend):
        seq, shm = _family_pair(shared_backend)
        seq_sk = {v: seq.new_vertex_sketch(v) for v in range(40)}
        shm_sk = {v: shm.new_vertex_sketch(v) for v in range(40)}
        us, vs = _random_edges(40, 30)
        ones = np.ones(30, dtype=np.int64)
        seq.apply_edges_bulk(us, vs, ones)
        shm.apply_edges_bulk(us, vs, ones)
        # Scalar updates write the (possibly shared-memory) pool rows
        # directly from the parent -- same cells either way.
        for u, v in ((1, 2), (5, 38), (0, 39)):
            for sketches in (seq_sk, shm_sk):
                sketches[u].apply_edge(u, v, +1)
                sketches[v].apply_edge(u, v, +1)
        seq.apply_edges_bulk(us[:9], vs[:9], -ones[:9])
        shm.apply_edges_bulk(us[:9], vs[:9], -ones[:9])
        assert np.array_equal(seq.pool.cells, shm.pool.cells)

    def test_query_routes_bit_identical(self, shared_backend):
        seq, shm = _family_pair(shared_backend)
        seq_samplers = [seq.new_vertex_sketch(v).sampler
                        for v in range(40)]
        shm_samplers = [shm.new_vertex_sketch(v).sampler
                        for v in range(40)]
        us, vs = _random_edges(40, 60)
        ones = np.ones(60, dtype=np.int64)
        seq.apply_edges_bulk(us, vs, ones)
        shm.apply_edges_bulk(us, vs, ones)

        for column in range(seq.columns):
            z_seq, e_seq = seq.query_iteration_bulk(seq_samplers, column)
            z_shm, e_shm = shm.query_iteration_bulk(shm_samplers, column)
            assert np.array_equal(z_seq, z_shm)
            assert e_seq == e_shm
            assert seq.query_bulk(seq_samplers, column) == \
                shm.query_bulk(shm_samplers, column)
        assert np.array_equal(seq.cuts_empty_bulk(seq_samplers),
                              shm.cuts_empty_bulk(shm_samplers))
        # Ground truth: the in-process sampler statics.
        zeros, found = L0Sampler.query_many(shm_samplers, 0)
        z_shm, e_shm = shm.query_iteration_bulk(shm_samplers, 0)
        assert np.array_equal(zeros, z_shm)
        assert shm.decode_many(found) == e_shm

    def test_subset_and_repeated_slots(self, shared_backend):
        seq, shm = _family_pair(shared_backend)
        seq_samplers = [seq.new_vertex_sketch(v).sampler
                        for v in range(40)]
        shm_samplers = [shm.new_vertex_sketch(v).sampler
                        for v in range(40)]
        us, vs = _random_edges(40, 50)
        ones = np.ones(50, dtype=np.int64)
        seq.apply_edges_bulk(us, vs, ones)
        shm.apply_edges_bulk(us, vs, ones)
        order = [7, 3, 3, 39, 0, 21, 7]
        z_seq, e_seq = seq.query_iteration_bulk(
            [seq_samplers[i] for i in order], 1)
        z_shm, e_shm = shm.query_iteration_bulk(
            [shm_samplers[i] for i in order], 1)
        assert np.array_equal(z_seq, z_shm)
        assert e_seq == e_shm

    def test_merged_sketches_fall_back_in_process(self, shared_backend):
        # Standalone (merged) sketches are not pool rows: the router
        # must answer them locally, identically on both backends.
        seq, shm = _family_pair(shared_backend)
        seq_sk = [seq.new_vertex_sketch(v) for v in range(40)]
        shm_sk = [shm.new_vertex_sketch(v) for v in range(40)]
        us, vs = _random_edges(40, 50)
        ones = np.ones(50, dtype=np.int64)
        seq.apply_edges_bulk(us, vs, ones)
        shm.apply_edges_bulk(us, vs, ones)
        seq_merged = L0Sampler.merged([s.sampler for s in seq_sk[:5]])
        shm_merged = L0Sampler.merged([s.sampler for s in shm_sk[:5]])
        z_seq, e_seq = seq.query_iteration_bulk([seq_merged], 0)
        z_shm, e_shm = shm.query_iteration_bulk([shm_merged], 0)
        assert np.array_equal(z_seq, z_shm)
        assert e_seq == e_shm


# ---------------------------------------------------------------------------
# Tentpole: ring-buffer descriptor transport
# ---------------------------------------------------------------------------

class TestRingTransport:
    def test_small_batches_take_the_ring(self):
        """The hot path: small-batch dispatch ships (seq, offset, len)
        tokens through the descriptor ring, never pickled arrays."""
        backend = SharedMemoryBackend(num_workers=2)
        try:
            seq = SketchFamily(40, columns=6,
                               rng=np.random.default_rng(3),
                               backend="sequential")
            shm = SketchFamily(40, columns=6,
                               rng=np.random.default_rng(3),
                               backend=backend)
            raw_before = backend.raw_dispatches
            us, vs = _random_edges(40, 32)
            ones = np.ones(32, dtype=np.int64)
            for family in (seq, shm):
                family.apply_edges_bulk(us, vs, ones)
                family.apply_edges_bulk(us[:8], vs[:8], -ones[:8])
            samplers = [shm.new_vertex_sketch(v).sampler
                        for v in range(40)]
            shm.query_iteration_bulk(samplers, 0)
            shm.cuts_empty_bulk(samplers)
            shm.query_iteration_groups([np.arange(5), np.array([7, 9])],
                                       1)
            shm.scan_group(np.arange(4), np.arange(6))
            assert backend.ring_dispatches > 0
            assert backend.raw_dispatches == raw_before, (
                "small-batch work must never fall back to pipe pickling"
            )
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
        finally:
            backend.close()

    def test_oversized_descriptors_fall_back_to_pipe(self):
        """Descriptors that cannot fit the ring take the legacy pickled
        path -- bit-identically."""
        backend = SharedMemoryBackend(num_workers=2, ring_words=64)
        try:
            seq = SketchFamily(64, columns=6,
                               rng=np.random.default_rng(4),
                               backend="sequential")
            shm = SketchFamily(64, columns=6,
                               rng=np.random.default_rng(4),
                               backend=backend)
            us, vs = _random_edges(64, 200, seed=11)
            ones = np.ones(200, dtype=np.int64)
            seq.apply_edges_bulk(us, vs, ones)
            shm.apply_edges_bulk(us, vs, ones)
            assert backend.raw_dispatches > 0
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
        finally:
            backend.close()

    def test_ring_wraps_and_stays_in_sync(self):
        """Many small dispatches wrap the write offset; the seq/ack
        discipline keeps every record decoding correctly."""
        backend = SharedMemoryBackend(num_workers=1, ring_words=96)
        try:
            seq = SketchFamily(16, columns=4,
                               rng=np.random.default_rng(5),
                               backend="sequential")
            shm = SketchFamily(16, columns=4,
                               rng=np.random.default_rng(5),
                               backend=backend)
            us, vs = _random_edges(16, 40, seed=12)
            for i in range(40):
                one = np.ones(1, dtype=np.int64)
                seq.apply_edges_bulk(us[i:i + 1], vs[i:i + 1], one)
                shm.apply_edges_bulk(us[i:i + 1], vs[i:i + 1], one)
            assert backend.ring_dispatches >= 40
            assert max(backend._ring_offsets) <= backend.ring_words
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
        finally:
            backend.close()

    def test_ring_disabled_uses_pipe_only(self):
        backend = SharedMemoryBackend(num_workers=1, ring_words=0)
        try:
            family = SketchFamily(8, columns=4,
                                  rng=np.random.default_rng(6),
                                  backend=backend)
            us, vs = _random_edges(8, 6)
            family.apply_edges_bulk(us, vs, np.ones(6, dtype=np.int64))
            assert backend.ring_dispatches == 0
            assert backend.raw_dispatches > 0
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# Tentpole: membership-shipped supernode queries
# ---------------------------------------------------------------------------

class TestGroupRouting:
    def _loaded_pair(self, shared_backend, n=40, k=60, seed=21):
        seq, shm = _family_pair(shared_backend, n=n)
        us, vs = _random_edges(n, k, seed=seed)
        ones = np.ones(k, dtype=np.int64)
        seq.apply_edges_bulk(us, vs, ones)
        shm.apply_edges_bulk(us, vs, ones)
        return seq, shm

    def test_group_queries_match_materialised_merges(self, shared_backend):
        seq, shm = self._loaded_pair(shared_backend)
        groups = [np.array([0, 1, 2, 3]), np.array([10]),
                  np.array([20, 25, 30, 35, 39]), np.array([4, 5])]
        for column in range(seq.columns):
            z_seq, e_seq = seq.query_iteration_groups(groups, column)
            z_shm, e_shm = shm.query_iteration_groups(groups, column)
            assert np.array_equal(z_seq, z_shm)
            assert e_seq == e_shm
            # Ground truth: merge the member samplers in the parent.
            merged = [
                L0Sampler.merged(
                    [L0Sampler(seq.randomness, seq.pool.matrix(int(s)))
                     for s in group]
                )
                for group in groups
            ]
            z_ref, f_ref = L0Sampler.query_many(merged, column)
            assert np.array_equal(z_ref, z_seq)
            assert seq.decode_many(f_ref) == e_seq
        assert np.array_equal(seq.cuts_empty_groups(groups),
                              shm.cuts_empty_groups(groups))

    def test_scan_group_matches_merged_column_scan(self, shared_backend):
        seq, shm = self._loaded_pair(shared_backend, seed=22)
        members = np.array([1, 3, 7, 12, 30])
        cols = np.arange(seq.columns, dtype=np.int64)
        zero_seq, edges_seq = seq.scan_group(members, cols)
        zero_shm, edges_shm = shm.scan_group(members, cols)
        assert zero_seq == zero_shm
        assert edges_seq == edges_shm
        merged = L0Sampler.merged(
            [L0Sampler(seq.randomness, seq.pool.matrix(int(s)))
             for s in members]
        )
        assert zero_seq == merged.is_zero()
        assert edges_seq == seq.decode_many(merged.sample_columns(cols))

    def test_group_validation(self, shared_backend):
        seq, _ = _family_pair(shared_backend)
        with pytest.raises(SketchError, match="empty"):
            seq.query_iteration_groups([np.array([], dtype=np.int64)], 0)
        with pytest.raises(SketchError, match="vertex range"):
            seq.cuts_empty_groups([np.array([0, 40])])
        zeros, edges = seq.query_iteration_groups([], 0)
        assert zeros.shape == (0,) and edges == []

    def test_group_split_spreads_over_workers(self, shared_backend):
        _, shm = self._loaded_pair(shared_backend, seed=23)
        groups = [np.arange(10), np.arange(10, 20), np.arange(20, 30),
                  np.arange(30, 40)]
        shm.query_iteration_groups(groups, 0)
        split = shared_backend.last_split
        assert sum(split.values()) == 40
        assert len(split) == WORKERS, (
            "balanced groups must spread across the fleet"
        )


# ---------------------------------------------------------------------------
# Satellite: deletion-heavy mixes stay bit-identical across backends
# ---------------------------------------------------------------------------

class TestDeletionHeavyMix:
    def test_deletion_heavy_interleaving_parity(self, shared_backend):
        """>=30% deletions with insert->delete->reinsert churn of the
        same edges across phases: sketch cells, forests, and stats must
        stay bit-identical between the backends."""
        from repro.types import dele, ins

        n = 40
        a = MPCConnectivity(_seq_config(n))
        b = MPCConnectivity(_shm_config(n))
        us, vs = _random_edges(n, 30, seed=41)
        edges = list(zip(us.tolist(), vs.tolist()))
        phases = [
            [ins(u, v) for u, v in edges[:20]],
            # Phase 2: 10 inserts + 10 deletes (50% deletions).
            [ins(u, v) for u, v in edges[20:]]
            + [dele(u, v) for u, v in edges[:10]],
            # Phase 3: reinsert 6 of the deleted edges, delete 6 more
            # (50% deletions), churning the same coordinates again.
            [ins(u, v) for u, v in edges[:6]]
            + [dele(u, v) for u, v in edges[10:16]],
            # Phase 4: delete-only (100% deletions), incl. reinserted.
            [dele(u, v) for u, v in edges[:4]],
        ]
        total = sum(len(p) for p in phases)
        deletions = sum(1 for p in phases for up in p if up.is_delete)
        assert deletions / total >= 0.30
        for batch in phases:
            a.apply_batch(list(batch))
            b.apply_batch(list(batch))
            assert np.array_equal(a.family.pool.cells,
                                  b.family.pool.cells)
        assert a.num_components() == b.num_components()
        assert sorted(a.forest.all_edges()) == sorted(b.forest.all_edges())
        assert a.stats == b.stats


# ---------------------------------------------------------------------------
# Satellite: env-knob validation at read time
# ---------------------------------------------------------------------------

class TestEnvValidation:
    @pytest.mark.parametrize("value", ["abc", "-1", "", "1.5", "0"])
    def test_garbage_worker_count_raises_sketch_error(
        self, monkeypatch, value
    ):
        monkeypatch.setenv("REPRO_BACKEND_WORKERS", value)
        with pytest.raises(SketchError, match="REPRO_BACKEND_WORKERS"):
            default_worker_count()
        # The same validation guards the factory path.
        with pytest.raises(SketchError, match="REPRO_BACKEND_WORKERS"):
            get_backend("shared_memory")

    @pytest.mark.parametrize("value", ["abc", "-1", "", "0", "nan"])
    def test_garbage_timeout_raises_sketch_error(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BACKEND_TIMEOUT", value)
        # Validated before any worker spawns: the raise is immediate.
        with pytest.raises(SketchError, match="REPRO_BACKEND_TIMEOUT"):
            SharedMemoryBackend(num_workers=1)

    def test_valid_env_values_accepted(self, monkeypatch):
        from repro.mpc.backend import _env_float

        monkeypatch.setenv("REPRO_BACKEND_WORKERS", " 3 ")
        assert default_worker_count() == 3
        # Only exercise the parse, not a full fleet spawn.
        monkeypatch.setenv("REPRO_BACKEND_TIMEOUT", "30.5")
        assert _env_float("REPRO_BACKEND_TIMEOUT", 120.0) == 30.5

    def test_explicit_timeout_bypasses_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_TIMEOUT", "garbage")
        backend = SharedMemoryBackend(num_workers=1, call_timeout=15.0)
        try:
            assert backend.call_timeout == 15.0
        finally:
            backend.close()

    @pytest.mark.parametrize("value", ["abc", "-1", "", "1.5"])
    def test_garbage_retries_raises_sketch_error(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BACKEND_RETRIES", value)
        with pytest.raises(SketchError, match="REPRO_BACKEND_RETRIES"):
            SharedMemoryBackend(num_workers=1)

    @pytest.mark.parametrize("value", ["abc", "-1", "", "0", "nan"])
    def test_garbage_backoff_raises_sketch_error(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_BACKEND_BACKOFF", value)
        with pytest.raises(SketchError, match="REPRO_BACKEND_BACKOFF"):
            SharedMemoryBackend(num_workers=1)

    def test_garbage_fault_spec_raises_sketch_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_FAULTS", "explode:w=0")
        with pytest.raises(SketchError, match="REPRO_BACKEND_FAULTS"):
            SharedMemoryBackend(num_workers=1)

    def test_supervisor_knobs_read_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_RETRIES", " 5 ")
        monkeypatch.setenv("REPRO_BACKEND_BACKOFF", "0.125")
        backend = SharedMemoryBackend(num_workers=1, call_timeout=15.0)
        try:
            assert backend.retries == 5
            assert backend.backoff == 0.125
        finally:
            backend.close()

    def test_explicit_supervisor_knobs_bypass_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_RETRIES", "garbage")
        monkeypatch.setenv("REPRO_BACKEND_BACKOFF", "garbage")
        backend = SharedMemoryBackend(num_workers=1, call_timeout=15.0,
                                      retries=0, backoff=0.0)
        try:
            assert backend.retries == 0
            assert backend.backoff == 0.0
        finally:
            backend.close()


# ---------------------------------------------------------------------------
# Satellite: shared-memory segments never leak, on any exit path
# ---------------------------------------------------------------------------

def _shm_segments() -> "set[str]":
    import os

    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm not available on this platform")


@pytest.mark.skipif(not __import__("os").path.isdir("/dev/shm"),
                    reason="needs a visible /dev/shm")
class TestSegmentLeaks:
    def test_close_unlinks_every_segment(self):
        before = _shm_segments()
        backend = SharedMemoryBackend(num_workers=2, call_timeout=30.0)
        family = SketchFamily(16, columns=4,
                              rng=np.random.default_rng(0),
                              backend=backend)
        us, vs = _random_edges(16, 10)
        family.apply_edges_bulk(us, vs, np.ones(10, dtype=np.int64))
        assert _shm_segments() - before  # pools + rings + status live
        family.detach_backend()
        backend.close()
        assert _shm_segments() - before == set()

    def test_hard_teardown_after_worker_kill_unlinks(self):
        # close() must unlink pool/ring/status segments even when the
        # fleet died ungracefully (workers never ack the stop).
        before = _shm_segments()
        backend = SharedMemoryBackend(num_workers=2, call_timeout=30.0)
        family = SketchFamily(16, columns=4,
                              rng=np.random.default_rng(0),
                              backend=backend)
        us, vs = _random_edges(16, 10)
        family.apply_edges_bulk(us, vs, np.ones(10, dtype=np.int64))
        for proc in backend._procs:
            proc.kill()
            proc.join(timeout=5)
        family.detach_backend()
        backend.close()
        assert _shm_segments() - before == set()

    def test_mid_attach_failure_unlinks_fresh_segment(self, monkeypatch):
        # If adopting the buffer blows up halfway through attach_pool,
        # the just-created segment was registered nowhere -- the except
        # path must unlink it rather than leak it until reboot.
        from repro.sketch.sparse_recovery import RecoveryPool

        before = _shm_segments()
        backend = SharedMemoryBackend(num_workers=1, call_timeout=30.0)
        try:
            seq = SketchFamily(16, columns=4,
                               rng=np.random.default_rng(0),
                               backend="sequential")

            def explode(self, buffer):
                raise RuntimeError("induced adopt failure")

            monkeypatch.setattr(RecoveryPool, "adopt_buffer", explode)
            with pytest.raises(RuntimeError, match="induced"):
                backend.attach_pool(seq.pool, seq.randomness)
        finally:
            backend.close()
        assert _shm_segments() - before == set()

    def test_failed_transport_creation_unlinks_earlier_segments(
        self, monkeypatch
    ):
        # The constructor creates ring segments first, then the status
        # slot.  If the status-slot creation fails, the already-created
        # rings must be unlinked on the unwind -- the leak RL001
        # surfaced: transport creation used to sit outside __init__'s
        # cleanup guard, so a mid-sequence failure stranded segments
        # until reboot (and TestSegmentLeaks never saw it, because no
        # backend object existed to close).
        from multiprocessing import shared_memory as shm_mod

        before = _shm_segments()
        real = shm_mod.SharedMemory
        creates = {"count": 0}

        class FlakySegments:
            def __new__(cls, *args, **kwargs):
                if kwargs.get("create"):
                    creates["count"] += 1
                    if creates["count"] == 3:
                        raise OSError("induced transport failure")
                return real(*args, **kwargs)

        monkeypatch.setattr(shm_mod, "SharedMemory", FlakySegments)
        with pytest.raises(OSError, match="induced"):
            SharedMemoryBackend(num_workers=2, call_timeout=30.0)
        # Two rings were created before the status slot blew up ...
        assert creates["count"] == 3
        # ... and both were unlinked by the constructor's cleanup.
        assert _shm_segments() - before == set()

    def test_degraded_backend_releases_transport_segments(self):
        from repro.mpc.faults import FaultPlan

        before = _shm_segments()
        backend = SharedMemoryBackend(num_workers=2, call_timeout=30.0,
                                      retries=0, backoff=0.0,
                                      faults=FaultPlan.kill_always(1))
        family = SketchFamily(16, columns=4,
                              rng=np.random.default_rng(0),
                              backend=backend)
        us, vs = _random_edges(16, 10)
        family.apply_edges_bulk(us, vs, np.ones(10, dtype=np.int64))
        assert backend.degraded is not None
        # Transport (rings + status) is gone; only the pool segment --
        # which the parent's adopted cells still live in -- remains.
        leftover = _shm_segments() - before
        assert len(leftover) <= 1
        family.detach_backend()
        backend.close()
        assert _shm_segments() - before == set()


# ---------------------------------------------------------------------------
# End-to-end algorithm matrix on both backends
# ---------------------------------------------------------------------------

def _drive(alg_a, alg_b, n, rng, phases=5, size=10, weighted=False):
    live = set()
    for _ in range(phases):
        batch = make_valid_batch(rng, n, live, size, weighted=weighted)
        alg_a.apply_batch(list(batch))
        alg_b.apply_batch(list(batch))


class TestAlgorithmParity:
    def test_connectivity_matrix(self, shared_backend):
        n = 48
        a = MPCConnectivity(_seq_config(n))
        b = MPCConnectivity(_shm_config(n))
        _drive(a, b, n, np.random.default_rng(31))
        assert a.num_components() == b.num_components()
        assert sorted(a.forest.all_edges()) == sorted(b.forest.all_edges())
        assert a.stats == b.stats
        assert a.query_spanning_forest().edges == \
            b.query_spanning_forest().edges

    def test_msf_matrix(self, shared_backend):
        n = 32
        a = ApproxMSF(_seq_config(n), eps=0.5, max_weight=64.0)
        b = ApproxMSF(_shm_config(n), eps=0.5, max_weight=64.0)
        _drive(a, b, n, np.random.default_rng(5), phases=4, size=8,
               weighted=True)
        assert a.weight_estimate() == b.weight_estimate()
        fa, fb = a.query_forest(), b.query_forest()
        assert fa.edges == fb.edges
        assert fa.weights == fb.weights

    def test_bipartiteness_matrix(self, shared_backend):
        n = 24
        a = DynamicBipartiteness(_seq_config(n))
        b = DynamicBipartiteness(_shm_config(n))
        rng = np.random.default_rng(13)
        live = set()
        for _ in range(4):
            batch = make_valid_batch(rng, n, live, 8)
            a.apply_batch(list(batch))
            b.apply_batch(list(batch))
            assert a.is_bipartite() == b.is_bipartite()
            assert a.num_components() == b.num_components()

    def test_agm_static_matrix(self, shared_backend):
        n = 32
        a = AGMStaticConnectivity(_seq_config(n))
        b = AGMStaticConnectivity(_shm_config(n))
        _drive(a, b, n, np.random.default_rng(17), phases=3, size=8)
        assert a.query_spanning_forest().edges == \
            b.query_spanning_forest().edges

    def test_driver_level_backend_knob(self, shared_backend):
        # The batch-dynamic drivers accept backend= directly (it only
        # applies when they build their own cluster).
        n = 24
        a = MPCConnectivity(_seq_config(n))
        b = MPCConnectivity(MPCConfig(n=n, seed=7),
                            backend=shared_backend)
        assert b.cluster.backend is shared_backend
        assert AGMStaticConnectivity(
            MPCConfig(n=n, seed=7), backend="sequential"
        ).cluster.backend.name == "sequential"
        _drive(a, b, n, np.random.default_rng(23), phases=3, size=6)
        assert sorted(a.forest.all_edges()) == sorted(b.forest.all_edges())

    def test_streaming_connectivity_backend_knob(self, shared_backend):
        a = StreamingConnectivity(20, seed=5, backend="sequential")
        b = StreamingConnectivity(20, seed=5, backend=shared_backend)
        a.preload([(0, 1), (1, 2), (3, 4), (2, 3)])
        b.preload([(0, 1), (1, 2), (3, 4), (2, 3)])
        for op, (u, v) in [("i", (4, 5)), ("i", (0, 2)), ("d", (1, 2)),
                           ("d", (2, 3)), ("i", (10, 11))]:
            (a.insert if op == "i" else a.delete)(u, v)
            (b.insert if op == "i" else b.delete)(u, v)
        assert a.num_components() == b.num_components()
        assert sorted(a.forest.all_edges()) == sorted(b.forest.all_edges())
        assert np.array_equal(a.family.pool.cells, b.family.pool.cells)


# ---------------------------------------------------------------------------
# Satellite: per-shard metrics attribution
# ---------------------------------------------------------------------------

class TestShardAttribution:
    def test_parallel_backend_attributes_per_machine(self):
        n = 48
        alg = MPCConnectivity(_shm_config(n))
        rng = np.random.default_rng(2)
        live = set()
        snapshot = alg.apply_batch(make_valid_batch(rng, n, live, 12))
        by_machine = snapshot.words_by_machine
        assert sum(by_machine.values()) >= 12  # one word per update
        assert len(by_machine) > 1, (
            "a spread batch must land on more than one machine"
        )
        partition = alg.cluster.partition
        assert all(0 <= mid < partition.num_machines
                   for mid in by_machine)

    def test_sequential_backend_keeps_legacy_lumping(self):
        n = 48
        alg = MPCConnectivity(_seq_config(n))
        rng = np.random.default_rng(2)
        live = set()
        snapshot = alg.apply_batch(make_valid_batch(rng, n, live, 12))
        assert snapshot.words_by_machine == {}

    def test_backend_records_shard_split(self, shared_backend):
        _, shm = _family_pair(shared_backend)
        us, vs = _random_edges(40, 20)
        shm.apply_edges_bulk(us, vs, np.ones(20, dtype=np.int64))
        split = shared_backend.last_split
        assert sum(split.values()) == 40  # two endpoints per edge
        assert set(split) <= set(range(WORKERS))


# ---------------------------------------------------------------------------
# Failure model: dead workers are respawned, not fatal
# ---------------------------------------------------------------------------

class TestWorkerCrash:
    def test_dead_worker_is_respawned_bit_identically(self):
        # A private fleet: killing a worker must not poison the shared
        # module-level backend other tests use.  The supervisor must
        # detect the loss on the next call, respawn the worker, replay
        # its pool attachments, and complete the call -- bit-identical
        # to a fleet that never crashed.
        backend = SharedMemoryBackend(num_workers=2, call_timeout=30.0)
        try:
            seq = SketchFamily(16, columns=4,
                               rng=np.random.default_rng(0),
                               backend="sequential")
            family = SketchFamily(16, columns=4,
                                  rng=np.random.default_rng(0),
                                  backend=backend)
            us, vs = _random_edges(16, 10)
            ones = np.ones(10, dtype=np.int64)
            seq.apply_edges_bulk(us, vs, ones)
            family.apply_edges_bulk(us, vs, ones)
            backend._procs[0].kill()
            backend._procs[0].join(timeout=5)
            seq.apply_edges_bulk(us, vs, -ones)
            family.apply_edges_bulk(us, vs, -ones)
            assert np.array_equal(seq.pool.cells, family.pool.cells)
            assert backend.usable and backend.degraded is None
            assert backend.health["respawns"] >= 1
            assert "respawns=" in backend.describe()
            # And the respawned worker keeps serving.
            seq.apply_edges_bulk(us, vs, ones)
            family.apply_edges_bulk(us, vs, ones)
            assert np.array_equal(seq.pool.cells, family.pool.cells)
        finally:
            backend.close()

    def test_worker_exception_surfaces_with_traceback(self):
        backend = SharedMemoryBackend(num_workers=2)
        try:
            family = SketchFamily(16, columns=4,
                                  rng=np.random.default_rng(0),
                                  backend=backend)
            # A malformed descriptor (out-of-range column) blows up in
            # the worker; the exception must come back as SketchError
            # and the fleet must stay usable afterwards.
            us0, vs0 = _random_edges(16, 8, seed=3)
            family.apply_edges_bulk(us0, vs0,
                                    np.ones(8, dtype=np.int64))
            handle = family._pool_handle
            bad_slots = np.arange(16, dtype=np.int64)
            bad_cols = np.full(16, 99, dtype=np.int64)  # no such column
            with pytest.raises(SketchError, match="worker"):
                backend.query_rows(handle, bad_slots, bad_cols)
            assert backend.usable
            us, vs = _random_edges(16, 5)
            family.apply_edges_bulk(us, vs, np.ones(5, dtype=np.int64))
        finally:
            backend.close()

    def test_pool_detach_is_deferred_and_flushed(self):
        # Finalizers may run from GC inside an in-flight dispatch, so
        # release_token must only queue the worker-side detach; the
        # next top-level call drains the queue.
        import gc

        backend = SharedMemoryBackend(num_workers=1)
        try:
            family = SketchFamily(8, columns=4,
                                  rng=np.random.default_rng(0),
                                  backend=backend)
            token = family._pool_handle.token
            del family
            gc.collect()
            assert token in backend._pending_detach
            assert token not in backend._handles  # segment released
            survivor = SketchFamily(8, columns=4,
                                    rng=np.random.default_rng(1),
                                    backend=backend)
            assert backend._pending_detach == []
            us, vs = _random_edges(8, 4)
            survivor.apply_edges_bulk(us, vs,
                                      np.ones(4, dtype=np.int64))
        finally:
            backend.close()

    def test_closed_backend_rejects_work(self):
        backend = SharedMemoryBackend(num_workers=1)
        family = SketchFamily(8, columns=4,
                              rng=np.random.default_rng(0),
                              backend=backend)
        backend.close()
        with pytest.raises(SketchError, match="closed"):
            family.apply_edges_bulk(
                np.array([0], dtype=np.int64),
                np.array([1], dtype=np.int64),
                np.array([1], dtype=np.int64),
            )
