"""Vertex/edge placement tests."""

import pytest

from repro.mpc import VertexPartition


class TestVertexPartition:
    def test_every_vertex_mapped(self):
        part = VertexPartition(100, 7)
        machines = {part.machine_of_vertex(v) for v in range(100)}
        assert machines <= set(range(7))

    def test_blocks_are_contiguous(self):
        part = VertexPartition(20, 4)
        for m in range(4):
            vertices = list(part.vertices_of(m))
            assert vertices == sorted(vertices)
            for v in vertices:
                assert part.machine_of_vertex(v) == m

    def test_covers_all_vertices(self):
        part = VertexPartition(23, 5)
        covered = []
        for m in range(5):
            covered.extend(part.vertices_of(m))
        assert sorted(covered) == list(range(23))

    def test_edge_follows_min_endpoint(self):
        part = VertexPartition(40, 4)
        assert (part.machine_of_edge((3, 35))
                == part.machine_of_vertex(3))

    def test_out_of_range_rejected(self):
        part = VertexPartition(10, 2)
        with pytest.raises(ValueError):
            part.machine_of_vertex(10)

    def test_load_histogram(self):
        part = VertexPartition(10, 2)
        loads = part.load_histogram([(0, 1), (0, 2), (7, 9)])
        assert sum(loads) == 3

    def test_spread_balanced(self):
        part = VertexPartition(10, 4)
        spread = part.spread(10)
        assert sum(spread.values()) == 10
        assert max(spread.values()) - min(spread.values()) <= 1

    def test_degenerate_params_rejected(self):
        with pytest.raises(ValueError):
            VertexPartition(0, 3)
        with pytest.raises(ValueError):
            VertexPartition(5, 0)
