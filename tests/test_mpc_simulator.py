"""Tests for the cluster simulator: exchange semantics, capacity
enforcement, and the closed-form round charges."""

import pytest

from repro.errors import CapacityExceededError
from repro.mpc import Cluster, MPCConfig
from repro.mpc.machine import Message
from repro.mpc.simulator import tree_depth


class TestTreeDepth:
    def test_single_node(self):
        assert tree_depth(1, 4) == 0

    def test_exact_powers(self):
        assert tree_depth(16, 4) == 2
        assert tree_depth(17, 4) == 3

    def test_fanout_two(self):
        assert tree_depth(8, 2) == 3

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            tree_depth(4, 1)


class TestExchange:
    def test_delivery_and_counters(self, small_cluster):
        msgs = [Message(src=0, dst=1, payload="x", words=2),
                Message(src=0, dst=2, payload="y", words=1)]
        before = small_cluster.metrics.rounds
        inboxes = small_cluster.exchange(msgs)
        assert small_cluster.metrics.rounds == before + 1
        assert inboxes[1][0].payload == "x"
        assert inboxes[2][0].payload == "y"
        assert small_cluster.metrics.messages >= 2
        assert small_cluster.metrics.words_sent >= 3

    def test_bad_destination_rejected(self, small_cluster):
        bad = [Message(src=0, dst=10 ** 9, payload=None, words=1)]
        with pytest.raises(ValueError):
            small_cluster.exchange(bad)

    def test_capacity_violation_recorded(self):
        config = MPCConfig(n=16, phi=0.5, seed=0, strict_capacity=False)
        cluster = Cluster(config)
        flood = [Message(src=0, dst=1, payload=None,
                         words=cluster.local_memory + 1)]
        cluster.exchange(flood)
        assert len(cluster.metrics.violations) >= 1

    def test_capacity_violation_strict_raises(self):
        config = MPCConfig(n=16, phi=0.5, seed=0, strict_capacity=True)
        cluster = Cluster(config)
        flood = [Message(src=0, dst=1, payload=None,
                         words=cluster.local_memory + 1)]
        with pytest.raises(CapacityExceededError):
            cluster.exchange(flood)

    def test_store_capacity_audit(self):
        config = MPCConfig(n=16, phi=0.5, strict_capacity=False)
        cluster = Cluster(config)
        cluster.machine(0).put("blob", None,
                               words=cluster.local_memory + 5)
        cluster.check_store_capacities()
        assert any(v.what == "store" for v in cluster.metrics.violations)


class TestCharges:
    def test_local_is_one_round(self, small_cluster):
        assert small_cluster.charge_local() == 1

    def test_broadcast_depth_positive(self, small_cluster):
        rounds = small_cluster.charge_broadcast(words=1)
        assert rounds >= 1
        depth = tree_depth(small_cluster.num_machines,
                           small_cluster.config.fanout(1))
        assert rounds == max(1, depth)

    def test_broadcast_bigger_messages_cost_more(self):
        cluster = Cluster(MPCConfig(n=1024, phi=0.33, seed=0))
        cheap = cluster.charge_broadcast(words=1)
        costly = cluster.charge_broadcast(words=cluster.local_memory // 2)
        assert costly >= cheap

    def test_converge_matches_broadcast(self, small_cluster):
        assert (small_cluster.charge_converge(words=1)
                == small_cluster.charge_broadcast(words=1))

    def test_gather_flags_oversized_result(self):
        config = MPCConfig(n=16, phi=0.5, strict_capacity=False)
        cluster = Cluster(config)
        cluster.charge_gather(total_words=cluster.local_memory * 10)
        assert len(cluster.metrics.violations) >= 1

    def test_sort_charge_formula(self, small_cluster):
        import math
        rounds = small_cluster.charge_sort(1000)
        depth = math.ceil(math.log(1000, small_cluster.local_memory))
        assert rounds == 2 * max(1, depth) + 1

    def test_sort_charge_constant_in_machine_count(self):
        few = Cluster(MPCConfig(n=64, phi=0.5, num_machines=4))
        many = Cluster(MPCConfig(n=64, phi=0.5, num_machines=400))
        assert few.charge_sort(500) == many.charge_sort(500)

    def test_rounds_constant_in_n_for_fixed_phi(self):
        """The O(1/phi) claim: charges do not grow with n (they only
        depend on log_s(#machines) ~ 1/phi)."""
        rounds = []
        for n in (256, 1024, 4096, 16384):
            cluster = Cluster(MPCConfig(n=n, phi=0.5, seed=0))
            rounds.append(cluster.charge_broadcast())
        assert max(rounds) <= min(rounds) + 1

    def test_rounds_grow_as_phi_shrinks(self):
        shallow = Cluster(MPCConfig(n=4096, phi=0.75, seed=0))
        deep = Cluster(MPCConfig(n=4096, phi=0.25, seed=0))
        assert (deep.charge_broadcast() >= shallow.charge_broadcast())


class TestPhases:
    def test_phase_wraps_metrics(self, small_cluster):
        small_cluster.begin_phase("test")
        small_cluster.charge_local()
        snap = small_cluster.end_phase(batch_size=3)
        assert snap.rounds == 1
        assert snap.batch_size == 3
        assert snap.label == "test"
