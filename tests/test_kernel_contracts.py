"""Kernel numeric contracts: boundary-value parity + runtime checks.

The dynamic twin of the RL013-RL016 static proofs
(``tests/test_lint_numeric.py``): the field kernels are checked
against exact Python big-int arithmetic at the adversarial boundary
inputs (0, 1, p-2, p-1, and full-broadcast shapes) on every available
tier, and the ``REPRO_KERNELS_CHECK=1`` runtime wrapper is exercised
end to end -- it must accept every in-contract call and raise
:class:`~repro.errors.SketchError` naming the kernel and argument on
a dtype or range violation.
"""

import itertools

import numpy as np
import pytest

from repro import kernels
from repro.errors import SketchError
from repro.kernels import checks, registry
from repro.kernels.registry import MERSENNE_P

P = MERSENNE_P

TIERS = kernels.available_tiers()

#: The adversarial residues: additive/multiplicative identities and
#: the top of the canonical range, where limb folds and conditional
#: subtracts change behaviour.
BOUNDARY = (0, 1, P - 2, P - 1)


@pytest.fixture(autouse=True)
def _restore_tier():
    before = kernels.active_tier()
    yield
    kernels.set_tier(before)


def _u64(values):
    return np.array(list(values), dtype=np.uint64)


# ---------------------------------------------------------------------------
# Boundary-value parity against Python big-int arithmetic
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("tier", TIERS)
class TestBoundaryParity:
    def test_mulmod_boundary_pairs(self, tier):
        kernels.set_tier(tier)
        pairs = list(itertools.product(BOUNDARY, BOUNDARY))
        a = _u64(x for x, _ in pairs)
        b = _u64(y for _, y in pairs)
        got = kernels.mulmod_many(a, b)
        want = [(x * y) % P for x, y in pairs]
        assert got.dtype == np.uint64
        assert [int(v) for v in got] == want

    def test_addmod_boundary_pairs(self, tier):
        kernels.set_tier(tier)
        pairs = list(itertools.product(BOUNDARY, BOUNDARY))
        a = _u64(x for x, _ in pairs)
        b = _u64(y for _, y in pairs)
        got = kernels.addmod_many(a, b)
        want = [(x + y) % P for x, y in pairs]
        assert got.dtype == np.uint64
        assert [int(v) for v in got] == want

    def test_powmod_boundary_bases_and_exponents(self, tier):
        kernels.set_tier(tier)
        for z in BOUNDARY:
            exps = _u64((0, 1, 2, 61, 64, P - 2, P - 1))
            got = kernels.powmod_many(exps, z)
            want = [pow(z, int(e), P) for e in exps]
            assert got.dtype == np.int64
            assert [int(v) for v in got] == want, f"base {z}"

    def test_combine_limbs_boundary(self, tier):
        kernels.set_tier(tier)
        halves = (0, 1, (1 << 32) - 2, (1 << 32) - 1)
        pairs = list(itertools.product(halves, halves))
        lo = np.array([x for x, _ in pairs], dtype=np.int64)
        hi = np.array([y for _, y in pairs], dtype=np.int64)
        got = kernels.combine_limbs(lo, hi)
        want = [(x + (y << 32)) % P for x, y in pairs]
        assert got.dtype == np.int64
        assert [int(v) for v in got] == want

    def test_mulmod_addmod_full_broadcast(self, tier):
        kernels.set_tier(tier)
        col = _u64(BOUNDARY).reshape(-1, 1)
        row = _u64(BOUNDARY).reshape(1, -1)
        got_mul = kernels.mulmod_many(col, row)
        got_add = kernels.addmod_many(col, row)
        assert got_mul.shape == got_add.shape == (4, 4)
        for i, x in enumerate(BOUNDARY):
            for j, y in enumerate(BOUNDARY):
                assert int(got_mul[i, j]) == (x * y) % P
                assert int(got_add[i, j]) == (x + y) % P

    def test_results_stay_canonical(self, tier):
        kernels.set_tier(tier)
        rng = np.random.default_rng(20260808)
        a = rng.integers(0, P, size=4096, dtype=np.uint64)
        b = rng.integers(0, P, size=4096, dtype=np.uint64)
        for out in (kernels.mulmod_many(a, b),
                    kernels.addmod_many(a, b)):
            assert int(out.min()) >= 0
            assert int(out.max()) < P


# ---------------------------------------------------------------------------
# The REPRO_KERNELS_CHECK runtime wrapper
# ---------------------------------------------------------------------------

class TestRuntimeContractChecks:
    def _checked(self, name):
        impl = registry.numpy_table()[name]
        return checks.wrap(name, impl)

    def test_in_contract_calls_pass(self):
        mulmod = self._checked("mulmod_many")
        a = _u64(BOUNDARY)
        out = mulmod(a, a)
        assert [int(v) for v in out] == [(x * x) % P for x in BOUNDARY]

    def test_out_of_range_argument_raises(self):
        mulmod = self._checked("mulmod_many")
        bad = _u64((P,))  # non-canonical: p itself
        with pytest.raises(SketchError) as err:
            mulmod(bad, _u64((1,)))
        msg = str(err.value)
        assert "mulmod_many" in msg
        assert "'a'" in msg
        assert str(P) in msg

    def test_wrong_dtype_raises(self):
        addmod = self._checked("addmod_many")
        with pytest.raises(SketchError) as err:
            addmod(np.array([1, 2], dtype=np.int64), _u64((1, 2)))
        assert "dtype" in str(err.value)
        assert "uint64" in str(err.value)

    def test_scalar_argument_range_checked(self):
        powmod = self._checked("powmod_many")
        with pytest.raises(SketchError) as err:
            powmod(_u64((1, 2)), -1)  # z declared pyint[0, 2^62]
        assert "powmod_many" in str(err.value)
        assert "'z'" in str(err.value)

    def test_violating_return_is_reported(self):
        # A stand-in registered under a residue contract but returning
        # a non-canonical value: the return check must catch it.
        contract = registry.contract_for("mulmod_many")

        def dishonest(a, b):
            return a + b  # up to 2(p-1): not reduced

        dishonest.__kernel_contract__ = contract
        wrapped = checks.wrap("dishonest_demo", dishonest)
        with pytest.raises(SketchError) as err:
            wrapped(_u64((P - 1,)), _u64((P - 1,)))
        assert "return value" in str(err.value)

    def test_uncontracted_kernel_passes_through(self):
        def plain(a):
            return a

        assert checks.wrap("plain_demo", plain) is plain

    def test_env_knob_validated(self, monkeypatch):
        from repro.mpc.config import env_int

        monkeypatch.setenv(checks.ENV_CHECK, "yes")
        with pytest.raises(SketchError) as err:
            env_int(checks.ENV_CHECK, 0)
        assert checks.ENV_CHECK in str(err.value)

    @pytest.mark.parametrize("tier", TIERS)
    def test_every_tier_table_is_fully_contracted(self, tier):
        table = (registry.numpy_table() if tier == "numpy"
                 else registry.compiled_table())
        for name, impl in sorted(table.items()):
            contract = getattr(impl, "__kernel_contract__", None)
            assert contract is not None, \
                f"kernel {name!r} ({tier}) has no @kernel_contract"
            wrapped = checks.wrap(name, impl)
            assert wrapped is not impl, \
                f"checks.wrap ignored contracted kernel {name!r}"
