"""Tests for the shared algorithm base class and update validator."""

import pytest

from repro.core.api import BatchDynamicAlgorithm, UpdateValidator
from repro.errors import BatchTooLargeError, InvalidUpdateError
from repro.mpc import MPCConfig
from repro.types import Update, dele, ins


class TestUpdateValidator:
    def test_accepts_valid_sequence(self):
        validator = UpdateValidator()
        validator.check_and_apply([ins(0, 1), ins(1, 2)])
        validator.check_and_apply([dele(0, 1)])
        assert validator.num_edges == 1
        assert validator.edges() == {(1, 2)}

    def test_duplicate_insert_rejected(self):
        validator = UpdateValidator()
        validator.check_and_apply([ins(0, 1)])
        with pytest.raises(InvalidUpdateError):
            validator.check_and_apply([ins(1, 0)])

    def test_missing_delete_rejected(self):
        validator = UpdateValidator()
        with pytest.raises(InvalidUpdateError):
            validator.check_and_apply([dele(0, 1)])

    def test_insert_then_delete_same_batch_ok(self):
        validator = UpdateValidator()
        validator.check_and_apply([ins(0, 1), dele(0, 1)])
        assert validator.num_edges == 0

    def test_delete_then_reinsert_same_batch_rejected(self):
        """Insertions are processed first (Section 1.2), so this batch
        would insert a duplicate."""
        validator = UpdateValidator()
        validator.check_and_apply([ins(0, 1)])
        with pytest.raises(InvalidUpdateError):
            validator.check_and_apply([dele(0, 1), ins(0, 1)])

    def test_rejected_batch_is_atomic(self):
        """A rejected batch must leave the edge set untouched -- a
        partial application would desync a shared (session) validator
        from the algorithms' maintained state."""
        validator = UpdateValidator()
        validator.check_and_apply([ins(0, 1)])
        with pytest.raises(InvalidUpdateError):
            # (2, 3) is valid but precedes the duplicate in the batch.
            validator.check_and_apply([ins(2, 3), ins(0, 1)])
        assert validator.edges() == {(0, 1)}
        with pytest.raises(InvalidUpdateError):
            validator.check_and_apply([ins(4, 5), dele(2, 3)])
        assert validator.edges() == {(0, 1)}

    def test_tracks_weights(self):
        validator = UpdateValidator()
        validator.check_and_apply([ins(0, 1, weight=4.0)])
        assert validator.weight_of((0, 1)) == 4.0

    def test_untracked_mode_accepts_anything(self):
        validator = UpdateValidator(track=False)
        validator.check_and_apply([dele(0, 1)])  # no error
        assert validator.num_edges == 0


class _Recorder(BatchDynamicAlgorithm):
    """Minimal concrete algorithm for base-class behaviour tests."""

    name = "recorder"

    def __init__(self, config, **kwargs):
        super().__init__(config, **kwargs)
        self.seen = []

    def _process_batch(self, inserts, deletes):
        self.seen.append((list(inserts), list(deletes)))
        self.cluster.charge_local()

    def _register_memory(self):
        self.cluster.metrics.register_memory("state", 7)


class TestBatchDynamicAlgorithm:
    def test_phase_metrics_recorded(self):
        alg = _Recorder(MPCConfig(n=16, phi=0.5, seed=0))
        snap = alg.apply_batch([ins(0, 1), dele(0, 1)])
        assert snap.batch_size == 2
        assert snap.rounds > 0
        assert alg.phases == [snap]
        assert alg.total_memory_words() == 7

    def test_inserts_split_from_deletes(self):
        alg = _Recorder(MPCConfig(n=16, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1), ins(2, 3), dele(0, 1)])
        inserts, deletes = alg.seen[0]
        assert [up.edge for up in inserts] == [(0, 1), (2, 3)]
        assert [up.edge for up in deletes] == [(0, 1)]

    def test_batch_limit_enforced(self):
        alg = _Recorder(MPCConfig(n=16, phi=0.5, seed=0), batch_limit=2)
        with pytest.raises(BatchTooLargeError):
            alg.apply_batch([ins(0, 1), ins(1, 2), ins(2, 3)])

    def test_apply_update_is_singleton_phase(self):
        alg = _Recorder(MPCConfig(n=16, phi=0.5, seed=0))
        snap = alg.apply_update(ins(4, 5))
        assert snap.batch_size == 1

    def test_rounds_helpers(self):
        alg = _Recorder(MPCConfig(n=16, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1)])
        alg.apply_batch([ins(1, 2)])
        assert len(alg.rounds_per_phase()) == 2
        assert alg.max_rounds() >= 1
