"""1-sparse recovery matrix tests."""

import numpy as np
import pytest

from repro.sketch import MERSENNE_P, RecoveryMatrix
from repro.sketch.l0_sampler import SamplerRandomness


def randomness(universe=1000, columns=4, seed=0):
    return SamplerRandomness(universe, columns, np.random.default_rng(seed))


def apply_value(matrix, rnd, idx, delta):
    matrix.apply(rnd.levels_of(idx), idx, delta, rnd.zpow(idx))


class TestRecoveryMatrix:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RecoveryMatrix(0, 3)
        with pytest.raises(ValueError):
            RecoveryMatrix(3, 0)

    def test_single_coordinate_recovered(self):
        rnd = randomness()
        m = RecoveryMatrix(rnd.columns, rnd.levels)
        apply_value(m, rnd, 137, 1)
        for col in range(rnd.columns):
            assert m.recover(col, rnd.universe, rnd.fingerprint_ok) == 137

    def test_cancellation_returns_zero_state(self):
        rnd = randomness()
        m = RecoveryMatrix(rnd.columns, rnd.levels)
        apply_value(m, rnd, 42, 1)
        apply_value(m, rnd, 42, -1)
        assert m.is_entirely_zero()
        assert all(m.column_is_zero(c) for c in range(rnd.columns))

    def test_zero_column_detection(self):
        rnd = randomness()
        m = RecoveryMatrix(rnd.columns, rnd.levels)
        assert m.column_is_zero(0)
        apply_value(m, rnd, 5, 1)
        assert not m.column_is_zero(0)

    def test_dense_vector_recovers_valid_support(self):
        rnd = randomness(universe=500)
        m = RecoveryMatrix(rnd.columns, rnd.levels)
        support = set(range(0, 500, 7))
        for idx in support:
            apply_value(m, rnd, idx, 1)
        hits = 0
        for col in range(rnd.columns):
            got = m.recover(col, rnd.universe, rnd.fingerprint_ok)
            if got is not None:
                hits += 1
                assert got in support, "fingerprint must reject junk"
        assert hits >= 1, "at least one column should succeed"

    def test_negative_values_recovered(self):
        rnd = randomness()
        m = RecoveryMatrix(rnd.columns, rnd.levels)
        apply_value(m, rnd, 99, -1)
        assert m.recover(0, rnd.universe, rnd.fingerprint_ok) == 99

    def test_merge_is_linear(self):
        rnd = randomness()
        a = RecoveryMatrix(rnd.columns, rnd.levels)
        b = RecoveryMatrix(rnd.columns, rnd.levels)
        apply_value(a, rnd, 7, 1)
        apply_value(b, rnd, 7, -1)
        apply_value(b, rnd, 11, 1)
        a.merge_from(b)
        assert a.recover(0, rnd.universe, rnd.fingerprint_ok) == 11

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RecoveryMatrix(2, 3).merge_from(RecoveryMatrix(2, 4))

    def test_sum_of_many_keeps_fingerprint_in_range(self):
        rnd = randomness()
        parts = []
        for i in range(50):
            m = RecoveryMatrix(rnd.columns, rnd.levels)
            apply_value(m, rnd, i, 1)
            parts.append(m)
        total = RecoveryMatrix.sum_of(parts)
        assert int(total.F.max()) < MERSENNE_P
        assert int(total.F.min()) >= 0
        got = total.recover(0, rnd.universe, rnd.fingerprint_ok)
        assert got is None or 0 <= got < 50

    def test_sum_of_empty_rejected(self):
        with pytest.raises(ValueError):
            RecoveryMatrix.sum_of([])

    def test_copy_is_independent(self):
        rnd = randomness()
        m = RecoveryMatrix(rnd.columns, rnd.levels)
        apply_value(m, rnd, 3, 1)
        dup = m.copy()
        apply_value(m, rnd, 3, -1)
        assert dup.recover(0, rnd.universe, rnd.fingerprint_ok) == 3

    def test_words_accounting(self):
        m = RecoveryMatrix(4, 10)
        assert m.words == 3 * 4 * 10
