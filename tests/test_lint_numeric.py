"""The RL013-RL016 numeric abstract interpreter, on the real kernels.

Three layers:

* the acceptance gate -- the analyzer proves all ten kernels
  overflow-free and residue-canonical on both tier modules, zero
  findings (this doubles as the CI smoke test);
* seeded single-token mutations -- a dropped ``& _MASK32``, a widened
  ``_U29`` shift, a removed ``% MERSENNE_P`` -- are each caught with a
  readable interval-violation counterexample;
* the report plumbing -- ``--intervals-report`` JSON shape and the
  ``python -m repro.lint.numeric`` exit codes CI keys on.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import RULE_PACK_VERSION
from repro.lint.engine import lint_source, make_context
from repro.lint.numeric import analyze_contexts, analyze_paths, main

ROOT = Path(__file__).resolve().parents[1]
KERNELS = ROOT / "src" / "repro" / "kernels"
NUMPY_TIER = KERNELS / "numpy_tier.py"
COMPILED_TIER = KERNELS / "compiled_tier.py"

VPATH = "src/repro/kernels/numpy_tier.py"


def _analyze(source, vpath=VPATH):
    return analyze_contexts([make_context(vpath, source)])


@pytest.fixture(scope="module")
def numpy_src():
    return NUMPY_TIER.read_text(encoding="utf-8")


# ---------------------------------------------------------------------------
# The acceptance gate: the real kernel set proves clean
# ---------------------------------------------------------------------------

class TestRealKernelsProveClean:
    def test_both_tiers_zero_findings(self):
        analysis = analyze_paths([str(KERNELS)])
        assert analysis.findings == [], "\n".join(
            f.render() for f in analysis.findings)

    def test_all_ten_kernels_proved_on_both_tiers(self):
        analysis = analyze_paths([str(KERNELS)])
        proved = {(r.kernel, r.tier) for r in analysis.results
                  if r.status == "proved"}
        kernels = {k for k, _ in proved}
        assert len(kernels) == 10
        for kernel in kernels:
            assert (kernel, "numpy") in proved
            assert (kernel, "compiled") in proved

    def test_residue_kernels_prove_canonical_range(self):
        analysis = analyze_paths([str(KERNELS)])
        by_key = {(r.kernel, r.tier): r for r in analysis.results}
        for kernel in ("mulmod_many", "addmod_many", "powmod_many",
                       "combine_limbs"):
            for tier in ("numpy", "compiled"):
                res = by_key[(kernel, tier)]
                assert "residue" in res.declared_return
                assert "2305843009213693950" in res.derived_return

    def test_full_lint_pack_clean_on_tier_sources(self, numpy_src):
        findings = lint_source(numpy_src, VPATH)
        assert findings == [], "\n".join(
            f.render() for f in findings)
        compiled_src = COMPILED_TIER.read_text(encoding="utf-8")
        findings = lint_source(
            compiled_src, "src/repro/kernels/compiled_tier.py")
        assert findings == [], "\n".join(
            f.render() for f in findings)


# ---------------------------------------------------------------------------
# Seeded mutations: each caught with a readable counterexample
# ---------------------------------------------------------------------------

class TestSeededMutations:
    def test_dropped_mask_reports_overflowing_product(self, numpy_src):
        assert "& _MASK32" in numpy_src
        mutated = numpy_src.replace("& _MASK32", "", 1)
        analysis = _analyze(mutated)
        overflows = [f for f in analysis.findings if f.rule == "RL013"]
        assert overflows, "dropped mask went unnoticed"
        msg = overflows[0].message
        # The counterexample names the op, the derived interval, and
        # the violated dtype bound.
        assert "mulmod_many" in msg
        assert "exceeds uint64" in msg
        assert "18446744073709551615" in msg

    def test_widened_shift_reports_unresolved_constant(self, numpy_src):
        assert "mid >> _U29" in numpy_src
        mutated = numpy_src.replace("mid >> _U29", "mid >> _U30", 1)
        analysis = _analyze(mutated)
        fired = {f.rule for f in analysis.findings}
        assert "RL013" in fired
        assert any("_U30" in f.message for f in analysis.findings)
        # And the return proof collapses with it.
        assert "RL014" in fired

    def test_dropped_reduction_reports_return_violation(self,
                                                        numpy_src):
        needle = "return (lo_m + shifted) % MERSENNE_P"
        assert needle in numpy_src
        mutated = numpy_src.replace(
            needle, "return (lo_m + shifted)", 1)
        analysis = _analyze(mutated)
        violations = [f for f in analysis.findings
                      if f.rule == "RL014"]
        assert violations, "missing mod-p reduction went unnoticed"
        msg = violations[0].message
        assert "combine_limbs" in msg
        assert "not contained" in msg

    def test_mutations_fire_through_the_rule_pack(self, numpy_src):
        mutated = numpy_src.replace("& _MASK32", "", 1)
        findings = lint_source(mutated, VPATH)
        assert "RL013" in {f.rule for f in findings}


# ---------------------------------------------------------------------------
# Report shape and CLI
# ---------------------------------------------------------------------------

class TestReportAndCli:
    def test_intervals_report_shape(self):
        analysis = analyze_paths([str(KERNELS)])
        payload = analysis.to_json()
        assert payload["rule_pack"] == RULE_PACK_VERSION
        assert payload["findings"] == []
        assert payload["verdicts"] == {"proved": 20}
        assert set(payload["kernels"]) == {
            "mulmod_many", "addmod_many", "poly_field_values",
            "trailing_zeros_many", "powmod_many", "combine_limbs",
            "pool_scatter", "decode_prefix", "merge_groups",
            "is_zero_cells"}
        entry = payload["kernels"]["mulmod_many"]["numpy"]
        for key in ("status", "declared_return", "derived_return",
                    "args", "escapes_declared", "escapes_used"):
            assert key in entry
        tz = payload["kernels"]["trailing_zeros_many"]
        assert tz["numpy"]["escapes_used"] == ["float64", "wrap"]
        assert tz["compiled"]["escapes_used"] == []

    def test_main_clean_exit_and_report_file(self, tmp_path, capsys):
        report = tmp_path / "intervals.json"
        code = main([str(KERNELS),
                     "--intervals-report", str(report)])
        assert code == 0
        out = capsys.readouterr().out
        assert "20/20 kernel-tier proofs clean" in out
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["verdicts"] == {"proved": 20}

    def test_main_reports_findings_with_exit_one(self, tmp_path,
                                                 numpy_src, capsys):
        mutated = numpy_src.replace("& _MASK32", "", 1)
        bad = tmp_path / "src" / "repro" / "kernels"
        bad.mkdir(parents=True)
        (bad / "numpy_tier.py").write_text(mutated, encoding="utf-8")
        code = main([str(bad)])
        assert code == 1
        assert "RL013" in capsys.readouterr().out

    def test_main_bad_path_exits_two(self, capsys):
        assert main([str(ROOT / "no-such-dir")]) == 2

    def test_module_smoke(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint.numeric",
             str(KERNELS)],
            capture_output=True, text=True, cwd=ROOT,
            env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin"})
        assert proc.returncode == 0, proc.stderr
        assert "20/20 kernel-tier proofs clean" in proc.stdout

    def test_lint_main_intervals_report(self, tmp_path):
        from repro.lint.__main__ import main as lint_main

        report = tmp_path / "intervals.json"
        code = lint_main([str(KERNELS),
                          "--intervals-report", str(report)])
        assert code == 0
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["verdicts"] == {"proved": 20}
