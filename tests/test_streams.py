"""Stream generator validity and determinism tests."""

import numpy as np
import pytest

from repro.baselines import DynamicConnectivityOracle
from repro.types import ins
from repro.streams import (
    ChurnStream,
    SplitMergeStream,
    as_batches,
    iter_batches,
    erdos_renyi_insertions,
    even_cycle_insertions,
    odd_cycle_insertions,
    path_insertions,
    planted_matching_insertions,
    power_law_insertions,
    random_tree_insertions,
    singleton_batches,
    star_insertions,
    weighted_insertions,
)


def assert_valid_stream(n, batches):
    """Replay against the oracle: raises on any invalid update."""
    oracle = DynamicConnectivityOracle(n)
    for batch in batches:
        seen = set()
        for up in batch:
            assert up.edge not in seen, "edge touched twice in one batch"
            seen.add(up.edge)
        oracle.apply_batch(batch)
    return oracle


class TestInsertionGenerators:
    def test_er_distinct_edges(self):
        ups = erdos_renyi_insertions(30, 100, seed=1)
        edges = [up.edge for up in ups]
        assert len(edges) == len(set(edges)) == 100
        assert all(up.is_insert for up in ups)

    def test_er_deterministic(self):
        a = erdos_renyi_insertions(30, 50, seed=9)
        b = erdos_renyi_insertions(30, 50, seed=9)
        assert a == b

    def test_weighted_range(self):
        ups = weighted_insertions(20, 40, max_weight=16, seed=2)
        assert all(1 <= up.weight <= 16 for up in ups)

    def test_power_law_skew(self):
        ups = power_law_insertions(100, 200, exponent=2.0, seed=3)
        degree = {}
        for up in ups:
            degree[up.u] = degree.get(up.u, 0) + 1
            degree[up.v] = degree.get(up.v, 0) + 1
        top = max(degree.values())
        assert top >= 10, "power-law stream should have hubs"

    def test_path_and_star_and_tree_span(self):
        for ups in (path_insertions(20, seed=1), star_insertions(20),
                    random_tree_insertions(20, seed=1)):
            oracle = assert_valid_stream(20, [ups])
            assert oracle.num_components() == 1
            assert oracle.num_edges == 19

    def test_cycles(self):
        assert len(even_cycle_insertions(10)) == 10
        assert len(odd_cycle_insertions(9)) == 9
        with pytest.raises(ValueError):
            even_cycle_insertions(7)
        with pytest.raises(ValueError):
            odd_cycle_insertions(8)

    def test_planted_matching_opt(self):
        ups = planted_matching_insertions(40, size=15, noise=10, seed=4)
        from repro.baselines import maximum_matching_size
        opt = maximum_matching_size(40, [up.edge for up in ups])
        assert opt >= 15

    def test_planted_matching_too_large_rejected(self):
        with pytest.raises(ValueError):
            planted_matching_insertions(10, size=6)


class TestChurn:
    @pytest.mark.parametrize("seed", range(3))
    def test_stream_is_valid(self, seed):
        stream = ChurnStream(24, seed=seed, delete_fraction=0.4)
        batches = list(stream.batches(30, 6))
        oracle = assert_valid_stream(24, batches)
        assert oracle.num_edges == stream.num_live

    def test_target_steering(self):
        stream = ChurnStream(64, seed=1, delete_fraction=0.3,
                             target_edges=60)
        for batch in stream.batches(80, 10):
            pass
        assert 20 <= stream.num_live <= 120

    def test_weighted_churn(self):
        stream = ChurnStream(16, seed=2, weights=(1, 8))
        batch = stream.next_batch(10)
        assert all(1 <= up.weight <= 8 for up in batch
                   if up.is_insert)


class TestSplitMerge:
    def test_build_then_surgery_valid(self):
        gen = SplitMergeStream(20, seed=3, spare_edges=10)
        batches = gen.build_batches(8)
        surgery = gen.surgery_batch(5)
        assert_valid_stream(20, batches + [surgery])
        assert all(up.is_delete for up in surgery)

    def test_surgery_before_build_rejected(self):
        gen = SplitMergeStream(10, seed=0)
        with pytest.raises(RuntimeError):
            gen.surgery_batch(2)


class TestBatching:
    def test_as_batches_partition(self):
        ups = erdos_renyi_insertions(20, 25, seed=0)
        batches = as_batches(ups, 10)
        assert [len(b) for b in batches] == [10, 10, 5]
        flat = [up for b in batches for up in b]
        assert flat == list(ups)

    def test_singleton_batches(self):
        ups = erdos_renyi_insertions(10, 5, seed=0)
        assert all(len(b) == 1 for b in singleton_batches(ups))

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            as_batches([], 0)
        with pytest.raises(ValueError):
            iter_batches([], 0)  # raises at call time, not first next()

    def test_iter_batches_matches_as_batches(self):
        ups = erdos_renyi_insertions(20, 25, seed=0)
        lazy = list(iter_batches(iter(ups), 10))
        eager = as_batches(ups, 10)
        assert [list(b) for b in lazy] == [list(b) for b in eager]

    def test_iter_batches_preserves_stream_order(self):
        ups = erdos_renyi_insertions(30, 41, seed=2)
        batches = list(iter_batches((u for u in ups), 7))
        assert [len(b) for b in batches] == [7] * 5 + [6]
        flat = [up for b in batches for up in b]
        assert flat == list(ups)

    def test_iter_batches_is_lazy(self):
        consumed = []

        def stream():
            for i, up in enumerate(erdos_renyi_insertions(20, 12, seed=1)):
                consumed.append(i)
                yield up

        gen = iter_batches(stream(), 5)
        assert consumed == []          # nothing pulled yet
        first = next(gen)
        assert len(first) == 5
        assert consumed == [0, 1, 2, 3, 4]   # exactly one batch buffered
        rest = list(gen)
        assert [len(b) for b in rest] == [5, 2]
        assert consumed == list(range(12))

    def test_iter_batches_unbounded_source(self):
        def endless():
            i = 0
            while True:
                yield ins(i, i + 1)
                i += 1

        gen = iter_batches(endless(), 4)
        assert [len(next(gen)) for _ in range(3)] == [4, 4, 4]

    def test_iter_batches_empty_source_yields_nothing(self):
        # Never an empty Batch: an empty phase would still charge
        # routing downstream.
        assert list(iter_batches([], 5)) == []
        assert list(iter_batches(iter(()), 1)) == []
        with pytest.raises(StopIteration):
            next(iter_batches((u for u in ()), 3))

    def test_iter_batches_source_error_keeps_partial_batch(self):
        # A source that dies mid-fill must not drop the updates already
        # pulled: a subsequent next() resumes with them, in order.
        ups = erdos_renyi_insertions(20, 7, seed=5)
        state = {"fail": True}

        def flaky():
            for i, up in enumerate(ups):
                if state["fail"] and i == 5:
                    raise OSError("transient source hiccup")
                yield up

        gen = iter_batches(flaky(), 4)
        assert list(next(gen)) == list(ups[:4])
        with pytest.raises(OSError):
            next(gen)           # pulled ups[4] before the hiccup
        state["fail"] = False
        # The retained item leads the next batch; nothing was lost and
        # nothing is duplicated (the failed generator is spent, so the
        # resume only sees what was already buffered).
        assert list(next(gen)) == [ups[4]]
        assert list(iter_batches(flaky(), 4)) and True  # flaky reusable

    def test_iter_batches_resumable_after_partial_resume(self):
        # The retained partial batch composes with a still-live source:
        # buffered items stay at the front of the next batch.
        ups = erdos_renyi_insertions(30, 10, seed=6)
        source = iter(ups)
        gen = iter_batches(source, 4)
        first = next(gen)
        assert list(first) == list(ups[:4])
        # Simulate an abandoned fill: stuff the buffer the way a
        # mid-fill interruption leaves it, then resume.
        gen._pending.append(next(source))
        assert list(next(gen)) == list(ups[4:8])
        assert list(next(gen)) == list(ups[8:])

    def test_iter_batches_abandonment_loses_no_source_items(self):
        # Walking away from the iterator (break / del) must leave the
        # source exactly at the boundary of what was delivered, so a
        # fresh iter_batches over the same source resumes seamlessly.
        ups = erdos_renyi_insertions(20, 12, seed=7)
        source = iter(ups)
        for batch in iter_batches(source, 5):
            assert list(batch) == list(ups[:5])
            break               # abandon mid-stream
        resumed = list(iter_batches(source, 5))
        flat = [up for b in resumed for up in b]
        assert flat == list(ups[5:])
