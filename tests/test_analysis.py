"""Analysis helpers: table rendering and bound formulas."""

import pytest

from repro.analysis import (
    agm_query_rounds_bound,
    batch_bound,
    connectivity_total_memory_bound,
    full_graph_total_memory_bound,
    matching_memory_bound_dynamic,
    matching_memory_bound_insert_only,
    print_table,
    ratio,
    render_table,
    rounds_bound_per_batch,
    size_estimation_memory_bound,
)


class TestTables:
    def test_render_alignment(self):
        rows = [
            {"alg": "ours", "rounds": 12, "memory": 3456.0},
            {"alg": "baseline", "rounds": 120, "memory": 1.0e9},
        ]
        text = render_table(rows, title="EXP-X")
        lines = text.splitlines()
        assert lines[0] == "EXP-X"
        assert "alg" in lines[1] and "rounds" in lines[1]
        assert len(lines) == 5
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1, "columns must align"

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_ratio(self):
        assert ratio(5, 10) == 0.5
        assert ratio(1, 0) == float("inf")

    def test_print_table_smoke(self, capsys):
        print_table([{"x": 1}], title="t")
        assert "t" in capsys.readouterr().out


class TestBounds:
    def test_connectivity_memory_superlinear_in_n(self):
        assert (connectivity_total_memory_bound(2048)
                > 2 * connectivity_total_memory_bound(1024))

    def test_full_graph_linear_in_m(self):
        n = 100
        assert (full_graph_total_memory_bound(n, 10000)
                > 5 * full_graph_total_memory_bound(n, 100))

    def test_rounds_bound_inverse_in_phi(self):
        assert rounds_bound_per_batch(0.25) == 2 * rounds_bound_per_batch(0.5)

    def test_agm_query_logarithmic(self):
        assert agm_query_rounds_bound(2 ** 20) == pytest.approx(
            2 * agm_query_rounds_bound(2 ** 10)
        )

    def test_batch_bound_monotone_in_phi(self):
        assert batch_bound(2 ** 20, 0.75) > batch_bound(2 ** 20, 0.25)

    def test_matching_bounds_shrink_with_alpha(self):
        n = 1024
        assert (matching_memory_bound_insert_only(n, 8)
                < matching_memory_bound_insert_only(n, 2))
        assert (matching_memory_bound_dynamic(n, 8)
                < matching_memory_bound_dynamic(n, 2))
        assert (size_estimation_memory_bound(n, 8, dynamic=True)
                < size_estimation_memory_bound(n, 2, dynamic=True))
