"""Unit tests for the shared value types."""

import pytest

from repro.types import (
    Batch,
    ForestSolution,
    MatchingSolution,
    Op,
    Update,
    canonical,
    dele,
    ins,
)


class TestCanonical:
    def test_orders_endpoints(self):
        assert canonical(5, 2) == (2, 5)
        assert canonical(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            canonical(3, 3)


class TestUpdate:
    def test_insert_shorthand(self):
        up = ins(4, 1)
        assert up.op is Op.INSERT
        assert up.is_insert and not up.is_delete
        assert up.edge == (1, 4)

    def test_delete_shorthand(self):
        up = dele(0, 9, weight=3.5)
        assert up.is_delete
        assert up.weight == 3.5

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            ins(2, 2)

    def test_inverse_round_trip(self):
        up = ins(1, 2, weight=7.0)
        assert up.inverse().is_delete
        assert up.inverse().inverse() == up

    def test_frozen(self):
        up = ins(1, 2)
        with pytest.raises(AttributeError):
            up.u = 5  # type: ignore[misc]


class TestBatch:
    def test_split_preserves_order(self):
        batch = Batch([ins(0, 1), dele(2, 3), ins(4, 5), dele(0, 1)])
        inserts, deletes = batch.split()
        assert [up.edge for up in inserts] == [(0, 1), (4, 5)]
        assert [up.edge for up in deletes] == [(2, 3), (0, 1)]

    def test_sequence_protocol(self):
        batch = Batch([ins(0, 1), ins(1, 2)])
        assert len(batch) == 2
        assert batch[0].edge == (0, 1)
        assert [up.edge for up in batch] == [(0, 1), (1, 2)]

    def test_empty(self):
        batch = Batch([])
        assert len(batch) == 0
        assert batch.insertions == [] and batch.deletions == []


class TestSolutions:
    def test_forest_component_count(self):
        sol = ForestSolution(n=10, edges=[(0, 1), (1, 2)], weights=[])
        assert sol.num_components == 8

    def test_forest_weight(self):
        sol = ForestSolution(n=3, edges=[(0, 1)], weights=[2.5])
        assert sol.total_weight == 2.5

    def test_matching_size(self):
        sol = MatchingSolution(edges=[(0, 1), (2, 3)])
        assert sol.size == 2
