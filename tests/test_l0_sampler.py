"""L0-sampler tests, including the linearity property the paper's
algorithms depend on (Remark 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import L0Sampler, SamplerRandomness, levels_for_universe


def make(universe=2000, columns=6, seed=1):
    rnd = SamplerRandomness(universe, columns, np.random.default_rng(seed))
    return rnd, L0Sampler(rnd)


class TestLevels:
    def test_levels_grow_with_universe(self):
        assert levels_for_universe(10) < levels_for_universe(10 ** 6)

    def test_bad_universe(self):
        with pytest.raises(ValueError):
            levels_for_universe(0)


class TestSampling:
    def test_empty_is_zero(self):
        _, sampler = make()
        assert sampler.is_zero()
        assert sampler.sample() is None

    def test_singleton_support(self):
        _, sampler = make()
        sampler.update(1234, 1)
        assert not sampler.is_zero()
        assert sampler.sample() == 1234

    def test_sample_from_support_only(self):
        _, sampler = make(seed=3)
        support = {3, 77, 500, 1999}
        for idx in support:
            sampler.update(idx, 1)
        for start in range(4):
            got = sampler.sample(start_column=start)
            assert got in support

    def test_insert_delete_cancels(self):
        _, sampler = make()
        for idx in (5, 10, 15):
            sampler.update(idx, 1)
        for idx in (5, 10, 15):
            sampler.update(idx, -1)
        assert sampler.is_zero()
        assert sampler.sample() is None

    def test_out_of_universe_rejected(self):
        _, sampler = make(universe=100)
        with pytest.raises(ValueError):
            sampler.update(100, 1)

    def test_zero_delta_is_noop(self):
        _, sampler = make()
        sampler.update(4, 0)
        assert sampler.is_zero()

    def test_success_rate_over_seeds(self):
        """Each sampler (with several columns) should essentially always
        return a support element for moderate supports."""
        failures = 0
        for seed in range(30):
            rnd, sampler = make(universe=5000, columns=6, seed=seed)
            support = set(np.random.default_rng(seed).integers(0, 5000, 40))
            for idx in support:
                sampler.update(int(idx), 1)
            got = sampler.sample()
            if got is None or got not in support:
                failures += 1
        assert failures == 0


class TestMerging:
    def test_merged_samples_symmetric_difference(self):
        rnd = SamplerRandomness(1000, 6, np.random.default_rng(2))
        a = L0Sampler(rnd)
        b = L0Sampler(rnd)
        a.update(10, 1)
        a.update(20, 1)
        b.update(20, -1)  # cancels across the merge
        b.update(30, 1)
        merged = L0Sampler.merged([a, b])
        assert merged.sample() in {10, 30}

    def test_merge_requires_same_randomness(self):
        _, a = make(seed=1)
        _, b = make(seed=2)
        with pytest.raises(ValueError):
            a.merge_from(b)
        with pytest.raises(ValueError):
            L0Sampler.merged([a, b])

    def test_merge_from_in_place(self):
        rnd = SamplerRandomness(100, 4, np.random.default_rng(0))
        a, b = L0Sampler(rnd), L0Sampler(rnd)
        a.update(7, 1)
        b.update(7, -1)
        a.merge_from(b)
        assert a.is_zero()

    def test_copy_independence(self):
        _, a = make()
        a.update(9, 1)
        dup = a.copy()
        a.update(9, -1)
        assert dup.sample() == 9
        assert a.is_zero()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 499),
                              st.sampled_from([1, -1])),
                    min_size=0, max_size=60))
    def test_linearity_property(self, ops):
        """Splitting a stream across two samplers and merging equals
        feeding one sampler the whole stream."""
        rnd = SamplerRandomness(500, 4, np.random.default_rng(11))
        whole = L0Sampler(rnd)
        left, right = L0Sampler(rnd), L0Sampler(rnd)
        for i, (idx, delta) in enumerate(ops):
            whole.update(idx, delta)
            (left if i % 2 == 0 else right).update(idx, delta)
        merged = L0Sampler.merged([left, right])
        assert np.array_equal(merged.matrix.W, whole.matrix.W)
        assert np.array_equal(merged.matrix.S, whole.matrix.S)
        assert np.array_equal(merged.matrix.F, whole.matrix.F)

    def test_words(self):
        rnd, sampler = make(columns=5)
        assert sampler.words == 3 * 5 * rnd.levels
