"""Protocol model checker: extraction fidelity + seeded-mutation harness.

The checker in :mod:`repro.lint.protocol` extracts the ring seq/ack +
status-slot + respawn state machine from ``repro/mpc/backend.py`` and
exhaustively explores bounded parent x worker x fault interleavings.
These tests pin both directions of its contract:

* the *real* backend extracts completely, matches the reference fact
  vector, and survives exploration (no reachable bad state);
* nine seeded single-line protocol mutations are each caught with a
  reachable bad-state counterexample trace.

Every mutation below is a plain string replacement applied to a copy
of the backend source -- the file on disk is never touched.
"""

import pathlib

import pytest

from repro.lint import protocol
from repro.lint.protocol import (
    GOOD_FACTS,
    check_backend_source,
    check_model,
    extract_model,
)

BACKEND = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro" / "mpc" / "backend.py"


@pytest.fixture(scope="module")
def backend_source():
    return BACKEND.read_text(encoding="utf-8")


# ---------------------------------------------------------------------------
# The real backend
# ---------------------------------------------------------------------------

class TestRealBackend:
    def test_extraction_is_complete(self, backend_source):
        model = extract_model(backend_source)
        assert model.complete, f"missing protocol functions: {model.missing}"

    def test_extraction_matches_reference_facts(self, backend_source):
        model = extract_model(backend_source)
        assert model.drift() == [], (
            "extracted machine drifted from the reference: "
            f"{model.drift()}"
        )
        assert model.facts() == GOOD_FACTS

    def test_exploration_passes_and_reports_state_space(self, backend_source):
        result = check_backend_source(backend_source)
        assert result.ok, "\n\n".join(b.render() for b in result.bad_states)
        # The proof is only worth something if the explorer actually
        # walked a state space: exhaustive, not vacuous.
        assert result.states > 10
        assert result.transitions > result.states
        assert result.bounds == {"ops": 2, "retries": 1, "max_faults": 2}
        assert result.drift == []

    def test_result_serialises(self, backend_source):
        payload = check_backend_source(backend_source).to_json()
        assert payload["ok"] is True
        assert payload["states"] > 0
        assert payload["facts"] == {k: v for k, v in GOOD_FACTS.items()}


# ---------------------------------------------------------------------------
# Seeded mutations
# ---------------------------------------------------------------------------

# (name, old, new, kinds-that-may-flag-it). Each `old` must occur
# exactly once in backend.py so the mutation is a single-line edit.
MUTATIONS = [
    (
        "swap_brackets",  # pre-write uses +opid: partial looks complete
        "status_view[worker_id] = -opid",
        "status_view[worker_id] = opid",
        {"bad_success", "double_apply"},
    ),
    (
        "drop_post_write",  # completed op still reads -opid
        "status_view[worker_id] = opid",
        "pass",
        {"false_broken"},
    ),
    (
        "skip_seq_reset",  # respawned worker rejects every record
        "self._ring_seqs[wid] = 0",
        "pass",
        {"spurious_failure"},
    ),
    (
        "reapply_completed",  # completed mutating op is retried
        "if slot == opid and mutating:",
        "if slot == opid and not mutating:",
        {"double_apply", "partial_retry", "bad_success"},
    ),
    (
        "no_partial_latch",  # half-applied op is silently retried
        "if mutating and slot == -opid:",
        "if not mutating and slot == -opid:",
        {"bad_success", "double_apply", "partial_retry"},
    ),
    (
        "drop_ack_write",  # worker never acks: success looks like loss
        'conn.send(("ok", payload))',
        'conn.send(("okay", payload))',
        {"spurious_failure"},
    ),
    (
        "no_seq_increment",  # worker seq freezes; parent runs ahead
        "expected_seq += 1",
        "pass",
        {"spurious_failure", "bad_success"},
    ),
    (
        "no_kill_before_classify",  # hung worker applies after verdict
        "self._kill_worker(wid)\n            slot = (int(self._status_view[wid])",
        "slot = (int(self._status_view[wid])",
        {"bad_success", "double_apply"},
    ),
    (
        "desync_no_continue",  # rejected record falls through and runs
        'conn.send(("desync", str(exc)))\n                        continue',
        'conn.send(("desync", str(exc)))',
        {"bad_success"},
    ),
]


class TestSeededMutations:
    @pytest.mark.parametrize(
        "name,old,new,kinds", MUTATIONS, ids=[m[0] for m in MUTATIONS]
    )
    def test_mutation_is_caught(self, backend_source, name, old, new, kinds):
        assert backend_source.count(old) == 1, (
            f"mutation {name}: anchor occurs "
            f"{backend_source.count(old)}x, need exactly 1"
        )
        mutated = backend_source.replace(old, new)
        result = check_backend_source(mutated)
        assert not result.ok, (
            f"mutation {name} not caught: explorer saw {result.states} "
            f"states and found no bad state"
        )
        found = {bad.kind for bad in result.bad_states}
        assert found & kinds, (
            f"mutation {name}: flagged as {sorted(found)}, "
            f"expected one of {sorted(kinds)}"
        )

    @pytest.mark.parametrize(
        "name,old,new,kinds", MUTATIONS, ids=[m[0] for m in MUTATIONS]
    )
    def test_counterexample_trace_is_readable(
        self, backend_source, name, old, new, kinds
    ):
        mutated = backend_source.replace(old, new)
        result = check_backend_source(mutated)
        assert result.bad_states
        rendered = result.bad_states[0].render()
        # Human-readable: named bad state plus numbered trace steps.
        assert "reachable bad state" in rendered
        assert "1." in rendered
        assert len(result.bad_states[0].trace) >= 2

    def test_mutation_count_meets_floor(self):
        assert len(MUTATIONS) >= 6


# ---------------------------------------------------------------------------
# Lint integration (RL012 surfaces the same result)
# ---------------------------------------------------------------------------

class TestLintIntegration:
    def test_rl012_fires_on_mutated_source(self, backend_source):
        from repro.lint.engine import lint_source

        _, old, new, _ = MUTATIONS[2]  # skip_seq_reset
        findings = lint_source(
            backend_source.replace(old, new), "src/repro/mpc/backend.py"
        )
        assert any(f.rule == "RL012" for f in findings)

    def test_incomplete_fragment_is_skipped(self):
        model = extract_model("def _worker_main(conn):\n    pass\n")
        assert not model.complete
        with pytest.raises(ValueError):
            check_model(model)
