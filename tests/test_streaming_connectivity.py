"""Section 4 streaming reference algorithm vs the exact oracle."""

import numpy as np
import pytest

from repro.baselines import DynamicConnectivityOracle
from repro.core import StreamingConnectivity
from repro.errors import InvalidUpdateError


class TestBasics:
    def test_initially_disconnected(self):
        alg = StreamingConnectivity(8, seed=1)
        assert not alg.connected(0, 1)
        assert alg.num_components() == 8

    def test_insert_connects(self):
        alg = StreamingConnectivity(8, seed=1)
        alg.insert(0, 1)
        alg.insert(1, 2)
        assert alg.connected(0, 2)
        assert alg.num_components() == 6

    def test_duplicate_insert_rejected(self):
        alg = StreamingConnectivity(4, seed=1)
        alg.insert(0, 1)
        with pytest.raises(InvalidUpdateError):
            alg.insert(1, 0)

    def test_missing_delete_rejected(self):
        alg = StreamingConnectivity(4, seed=1)
        with pytest.raises(InvalidUpdateError):
            alg.delete(0, 1)

    def test_non_tree_deletion_keeps_component(self):
        alg = StreamingConnectivity(4, seed=2)
        alg.insert(0, 1)
        alg.insert(1, 2)
        alg.insert(0, 2)  # cycle: one non-tree edge
        forest_before = set(alg.query().edges)
        non_tree = {(0, 1), (1, 2), (0, 2)} - forest_before
        alg.delete(*non_tree.pop())
        assert alg.connected(0, 2)

    def test_tree_deletion_finds_replacement(self):
        alg = StreamingConnectivity(6, seed=3)
        alg.insert(0, 1)
        alg.insert(1, 2)
        alg.insert(0, 2)
        tree = set(alg.query().edges)
        alg.delete(*tree.pop())
        assert alg.connected(0, 2), "replacement edge must reconnect"
        assert alg.sketch_failures == 0

    def test_split_when_no_replacement(self):
        alg = StreamingConnectivity(5, seed=4)
        alg.insert(0, 1)
        alg.insert(1, 2)
        alg.delete(1, 2)
        assert not alg.connected(0, 2)
        assert alg.connected(0, 1)

    def test_query_reports_valid_forest(self):
        alg = StreamingConnectivity(8, seed=5)
        for u, v in [(0, 1), (1, 2), (3, 4)]:
            alg.insert(u, v)
        sol = alg.query()
        assert sol.edges == [(0, 1), (1, 2), (3, 4)]
        assert sol.num_components == 5

    def test_space_words_near_n_polylog(self):
        alg = StreamingConnectivity(64, seed=1)
        # O(n log^3 n) with the explicit constants of the construction.
        assert alg.space_words < 64 * (6 * np.log2(64)) ** 3


class TestRandomStreams:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_oracle(self, seed):
        rng = np.random.default_rng(seed)
        n = 28
        alg = StreamingConnectivity(n, seed=seed)
        oracle = DynamicConnectivityOracle(n)
        live = set()
        for _ in range(150):
            if live and rng.random() < 0.4:
                pool = sorted(live)
                edge = pool[int(rng.integers(0, len(pool)))]
                live.discard(edge)
                alg.delete(*edge)
                oracle.delete(*edge)
            else:
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n))
                if u == v:
                    continue
                edge = (min(u, v), max(u, v))
                if edge in live:
                    continue
                live.add(edge)
                alg.insert(u, v)
                oracle.insert(u, v)
            comp_alg = {}
            for v in range(n):
                comp_alg.setdefault(
                    alg.components.id_of(v), set()
                ).add(v)
            assert sorted(tuple(sorted(c)) for c in comp_alg.values()) \
                == oracle.component_sets()
        assert alg.sketch_failures == 0
