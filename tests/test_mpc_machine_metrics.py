"""Unit tests for Machine storage and the metrics ledgers."""

import pytest

from repro.mpc.machine import Machine, Message
from repro.mpc.metrics import CapacityViolation, ClusterMetrics


class TestMachine:
    def test_put_get_discard(self):
        m = Machine(0, capacity=10)
        m.put("a", [1, 2, 3], words=3)
        assert m.get("a") == [1, 2, 3]
        assert m.used_words == 3
        m.discard("a")
        assert m.get("a") is None
        assert m.used_words == 0

    def test_replace_updates_usage(self):
        m = Machine(0, capacity=10)
        m.put("k", "x", words=4)
        m.put("k", "y", words=2)
        assert m.used_words == 2
        assert m.get("k") == "y"

    def test_over_capacity_flag(self):
        m = Machine(0, capacity=3)
        m.put("k", "x", words=5)
        assert m.over_capacity()
        assert m.free_words == -2

    def test_contains_and_keys(self):
        m = Machine(1, capacity=10)
        m.put("a", 1, words=1)
        assert "a" in m and "b" not in m
        assert list(m.keys()) == ["a"]

    def test_negative_size_rejected(self):
        m = Machine(0, capacity=5)
        with pytest.raises(ValueError):
            m.put("a", 1, words=-1)


class TestMessage:
    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            Message(src=0, dst=1, payload=None, words=-1)


class TestClusterMetrics:
    def test_round_charging_by_category(self):
        metrics = ClusterMetrics()
        metrics.charge_rounds(2, "broadcast")
        metrics.charge_rounds(3, "sort")
        metrics.charge_rounds(1, "broadcast")
        assert metrics.rounds == 6
        assert metrics.rounds_by_category == {"broadcast": 3, "sort": 3}

    def test_negative_rounds_rejected(self):
        metrics = ClusterMetrics()
        with pytest.raises(ValueError):
            metrics.charge_rounds(-1, "x")

    def test_memory_registration_and_peak(self):
        metrics = ClusterMetrics()
        metrics.register_memory("a", 100)
        metrics.register_memory("b", 50)
        assert metrics.total_memory == 150
        metrics.register_memory("a", 10)
        assert metrics.total_memory == 60
        assert metrics.peak_total_memory == 150
        metrics.release_memory("b")
        assert metrics.total_memory == 10

    def test_phase_snapshot_deltas(self):
        metrics = ClusterMetrics()
        metrics.charge_rounds(5, "setup")
        metrics.begin_phase("p1")
        metrics.charge_rounds(3, "work")
        metrics.charge_traffic(10, 40)
        snap = metrics.end_phase(batch_size=4)
        assert snap.rounds == 3
        assert snap.messages == 10
        assert snap.words_sent == 40
        assert snap.batch_size == 4
        assert snap.rounds_by_category == {"work": 3}

    def test_nested_phase_rejected(self):
        metrics = ClusterMetrics()
        metrics.begin_phase("a")
        with pytest.raises(RuntimeError):
            metrics.begin_phase("b")

    def test_end_without_begin_rejected(self):
        metrics = ClusterMetrics()
        with pytest.raises(RuntimeError):
            metrics.end_phase()

    def test_phase_memory_peak(self):
        metrics = ClusterMetrics()
        metrics.register_memory("x", 10)
        metrics.begin_phase("p")
        metrics.register_memory("x", 500)
        metrics.note_memory_peak()
        metrics.register_memory("x", 20)
        snap = metrics.end_phase()
        assert snap.peak_total_memory == 500

    def test_violation_recording(self):
        metrics = ClusterMetrics()
        metrics.begin_phase("p")
        metrics.record_violation(
            CapacityViolation(machine_id=1, what="send", used=10,
                              capacity=5, round_index=0)
        )
        snap = metrics.end_phase()
        assert snap.capacity_violations == 1

    def test_row_flattening(self):
        metrics = ClusterMetrics()
        metrics.begin_phase("p")
        snap = metrics.end_phase(batch_size=2)
        row = snap.row()
        assert row["phase"] == "p"
        assert row["batch"] == 2
