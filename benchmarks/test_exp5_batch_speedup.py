"""EXP-5 ("Fig 4"): batching speedup over single-update processing.

The whole point of batch-dynamic MPC ([NO21] vs [ILMP19]): applying k
updates in one phase costs O(1) rounds, while applying them one at a
time costs k * O(1) rounds.  We replay identical streams both ways and
report total rounds; the ratio should scale linearly with the batch
size.
"""

from __future__ import annotations

import pytest

from conftest import standard_config
from repro.analysis import print_table
from repro.core import MPCConnectivity
from repro.streams import ChurnStream, as_batches, singleton_batches

N = 128
BATCH_SIZES = [2, 4, 8, 16, 32]


def _total_rounds(batches, seed: int) -> int:
    alg = MPCConnectivity(standard_config(N, seed=seed))
    for batch in batches:
        alg.apply_batch(batch)
    return sum(p.rounds for p in alg.phases)


def test_exp5_batch_speedup(benchmark):
    stream = ChurnStream(N, seed=5, delete_fraction=0.3,
                         target_edges=2 * N)
    updates = [up for batch in stream.batches(16, 32) for up in batch]

    single_rounds = _total_rounds(singleton_batches(updates), seed=1)
    rows = []
    for k in BATCH_SIZES:
        batched_rounds = _total_rounds(as_batches(updates, k), seed=2)
        rows.append({
            "batch size k": k,
            "total rounds (batched)": batched_rounds,
            "total rounds (singleton)": single_rounds,
            "speedup": single_rounds / batched_rounds,
        })
    print_table(rows, title=f"EXP-5 batching speedup "
                            f"(n={N}, {len(updates)} updates)")

    speedups = [row["speedup"] for row in rows]
    # Shape: speedup grows ~linearly with k.  Both regimes are O(1)
    # rounds per phase, but the batched constant is several times the
    # singleton constant (the deletion path always runs in full), so the
    # asymptotic speedup is k times the constant ratio -- what matters
    # is monotone, roughly proportional growth.
    assert all(b >= a for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] >= 2 * speedups[1], \
        "speedup must keep growing with k (not saturate)"
    assert speedups[-1] >= 4

    benchmark(lambda: _total_rounds(as_batches(updates[:64], 16), seed=3))
