"""EXP-12/EXP-13: sketch throughput, per-edge vs vectorized bulk.

The batch-dynamic regime funnels ~O(n^phi) updates per phase through the
per-vertex AGM sketches, so ingestion throughput bounds every
algorithm's wall-clock.  EXP-12 measures edges/second for the same edge
batch ingested

* **sequentially** -- one :meth:`VertexSketch.apply_edge` call per
  (edge, endpoint), the pre-vectorization hot path, and
* **bulk** -- one :meth:`SketchFamily.apply_edges_bulk` call, the
  group-by-endpoint scatter used by ``MPCConnectivity`` phases and
  ``preload``,

asserts the two leave bit-identical sketch state, and writes the
numbers to ``BENCH_ingest.json`` so future PRs can track the perf
trajectory.

EXP-13 is the query-side twin at the same ``(n, batch)`` point: one AGM
halving iteration's worth of work -- a zero test plus one column's
cut-edge recovery for every supernode -- run

* **sequentially** -- ``is_zero()`` + ``sample_column()`` per sketch,
  the pre-vectorization query path, and
* **bulk** -- one fused ``L0Sampler.query_many`` pass over all
  supernodes (the primitive behind
  ``SketchFamily.query_iteration_bulk``, the shape
  ``_agm_replacements`` and the static AGM contraction consume),

asserts bit-identical answers, and merges edges-recovered/second into
the same ``BENCH_ingest.json`` so the trajectory file tracks both
halves of the pipeline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import print_table
from repro.sketch import SketchFamily

N = 512
BATCH = 256
COLUMNS = 18  # max(4, 2*log2(n)) for n = 512, the algorithms' default
REPS = 7
# The measured margin is ~9x on a quiet machine; CI sets the env var
# to a conservative floor so shared-runner noise cannot fail the build
# while local/driver runs still enforce the full 5x contract.
SPEEDUP_FLOOR = float(os.environ.get("INGEST_SPEEDUP_FLOOR", "5.0"))
# Same idea for the EXP-13 query side (acceptance contract: >= 3x).
QUERY_SPEEDUP_FLOOR = float(os.environ.get("QUERY_SPEEDUP_FLOOR", "3.0"))

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ingest.json"


def _edge_batch():
    rng = np.random.default_rng(2024)
    edges = set()
    while len(edges) < BATCH:
        u, v = (int(x) for x in rng.integers(0, N, 2))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    edges = sorted(edges)
    us = np.array([u for u, _ in edges], dtype=np.int64)
    vs = np.array([v for _, v in edges], dtype=np.int64)
    return edges, us, vs


def _fresh_family():
    family = SketchFamily(N, columns=COLUMNS,
                          rng=np.random.default_rng(42))
    sketches = {v: family.new_vertex_sketch(v) for v in range(N)}
    return family, sketches


def _time_sequential(edges):
    family, sketches = _fresh_family()
    start = time.perf_counter()
    for u, v in edges:
        sketches[u].apply_edge(u, v, +1)
        sketches[v].apply_edge(u, v, +1)
    return time.perf_counter() - start, family


def _time_bulk(us, vs):
    family, _ = _fresh_family()
    deltas = np.ones(len(us), dtype=np.int64)
    start = time.perf_counter()
    family.apply_edges_bulk(us, vs, deltas)
    return time.perf_counter() - start, family


def test_exp12_ingest_throughput(benchmark):
    edges, us, vs = _edge_batch()

    # Warm-up (first-call numpy dispatch), then best-of-REPS each way.
    _time_sequential(edges)
    _time_bulk(us, vs)
    seq_time, seq_family = min(
        (_time_sequential(edges) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )
    bulk_time, bulk_family = min(
        (_time_bulk(us, vs) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )

    # Same randomness, same edges => the two paths must leave
    # bit-identical pool state (the tentpole's correctness contract).
    assert np.array_equal(seq_family.pool.cells, bulk_family.pool.cells)

    seq_eps = BATCH / seq_time
    bulk_eps = BATCH / bulk_time
    speedup = seq_eps and bulk_eps / seq_eps
    rows = [{
        "path": name,
        "time/batch (ms)": round(secs * 1e3, 3),
        "edges/sec": round(eps),
    } for name, secs, eps in (
        ("per-edge", seq_time, seq_eps),
        ("bulk", bulk_time, bulk_eps),
    )]
    print_table(rows, title=f"EXP-12 ingestion throughput "
                            f"(n={N}, batch={BATCH}, "
                            f"speedup {speedup:.1f}x)")

    payload = {
        "n": N,
        "batch": BATCH,
        "columns": COLUMNS,
        "sequential_edges_per_sec": seq_eps,
        "bulk_edges_per_sec": bulk_eps,
        "speedup": speedup,
        "reps": REPS,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= SPEEDUP_FLOOR, (
        f"bulk ingestion speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor (seq {seq_eps:.0f} e/s, "
        f"bulk {bulk_eps:.0f} e/s)"
    )

    benchmark(lambda: _time_bulk(us, vs)[0])


# ---------------------------------------------------------------------------
# EXP-13: query throughput (the recovery side of the same pipeline)
# ---------------------------------------------------------------------------

QUERY_COLUMN = 0


def _loaded_samplers():
    """A family with the EXP-12 batch ingested; one sampler per vertex.

    The per-vertex sketches double as the "supernode" sketches of the
    first AGM halving iteration, which is exactly the workload
    ``_agm_replacements`` and the static contraction put on the query
    path.
    """
    _, us, vs = _edge_batch()
    family, sketches = _fresh_family()
    family.apply_edges_bulk(us, vs, np.ones(len(us), dtype=np.int64))
    samplers = [sketches[v].sampler for v in range(N)]
    return family, samplers


def _query_sequential(family, samplers):
    """Scalar zero test + one-column recovery per supernode."""
    start = time.perf_counter()
    zeros = [
        all(s.matrix.column_is_zero(c) for c in range(family.columns))
        for s in samplers
    ]
    edges = [
        None if zero else s.sample_column(QUERY_COLUMN)
        for s, zero in zip(samplers, zeros)
    ]
    elapsed = time.perf_counter() - start
    return elapsed, zeros, edges


def _query_bulk(family, samplers):
    """One fused vectorized zero-test + recovery pass for all."""
    from repro.sketch import L0Sampler

    start = time.perf_counter()
    zeros, found = L0Sampler.query_many(samplers, QUERY_COLUMN)
    elapsed = time.perf_counter() - start
    edges = [None if idx < 0 else int(idx) for idx in found]
    return elapsed, [bool(z) for z in zeros], edges


def test_exp13_query_throughput(benchmark):
    family, samplers = _loaded_samplers()

    # Warm-up, then best-of-REPS each way.
    _query_sequential(family, samplers)
    _query_bulk(family, samplers)
    seq_time, seq_zeros, seq_edges = min(
        (_query_sequential(family, samplers) for _ in range(REPS)),
        key=lambda triple: triple[0],
    )
    bulk_time, bulk_zeros, bulk_edges = min(
        (_query_bulk(family, samplers) for _ in range(REPS)),
        key=lambda triple: triple[0],
    )

    # The batched query path must answer exactly what the scalar one
    # does (the tentpole's correctness contract, mirroring EXP-12).
    assert bulk_zeros == seq_zeros
    assert bulk_edges == seq_edges

    recovered = sum(1 for e in seq_edges if e is not None)
    assert recovered > 0, "workload must actually recover edges"
    seq_rps = recovered / seq_time
    bulk_rps = recovered / bulk_time
    speedup = bulk_rps / seq_rps
    rows = [{
        "path": name,
        "time/iteration (ms)": round(secs * 1e3, 3),
        "edges recovered/sec": round(rps),
    } for name, secs, rps in (
        ("per-supernode", seq_time, seq_rps),
        ("bulk", bulk_time, bulk_rps),
    )]
    print_table(rows, title=f"EXP-13 query throughput "
                            f"(n={N}, batch={BATCH}, "
                            f"supernodes={len(samplers)}, "
                            f"speedup {speedup:.1f}x)")

    # Merge into the shared trajectory file (EXP-12 writes the
    # ingestion half; keep whatever is already there).
    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload.update({
        "query_supernodes": len(samplers),
        "query_column": QUERY_COLUMN,
        "query_edges_recovered": recovered,
        "query_sequential_recovered_per_sec": seq_rps,
        "query_bulk_recovered_per_sec": bulk_rps,
        "query_speedup": speedup,
        "query_reps": REPS,
    })
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= QUERY_SPEEDUP_FLOOR, (
        f"bulk query speedup {speedup:.2f}x below the "
        f"{QUERY_SPEEDUP_FLOOR}x floor (seq {seq_rps:.0f} r/s, "
        f"bulk {bulk_rps:.0f} r/s)"
    )

    benchmark(lambda: _query_bulk(family, samplers)[0])
