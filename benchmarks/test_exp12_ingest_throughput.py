"""EXP-12: sketch ingestion throughput, per-edge vs vectorized bulk.

The batch-dynamic regime funnels ~O(n^phi) updates per phase through the
per-vertex AGM sketches, so ingestion throughput bounds every
algorithm's wall-clock.  This experiment measures edges/second for the
same edge batch ingested

* **sequentially** -- one :meth:`VertexSketch.apply_edge` call per
  (edge, endpoint), the pre-vectorization hot path, and
* **bulk** -- one :meth:`SketchFamily.apply_edges_bulk` call, the
  group-by-endpoint scatter used by ``MPCConnectivity`` phases and
  ``preload``,

asserts the two leave bit-identical sketch state, and writes the
numbers to ``BENCH_ingest.json`` so future PRs can track the perf
trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import print_table
from repro.sketch import SketchFamily

N = 512
BATCH = 256
COLUMNS = 18  # max(4, 2*log2(n)) for n = 512, the algorithms' default
REPS = 7
# The measured margin is ~9x on a quiet machine; CI sets the env var
# to a conservative floor so shared-runner noise cannot fail the build
# while local/driver runs still enforce the full 5x contract.
SPEEDUP_FLOOR = float(os.environ.get("INGEST_SPEEDUP_FLOOR", "5.0"))

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ingest.json"


def _edge_batch():
    rng = np.random.default_rng(2024)
    edges = set()
    while len(edges) < BATCH:
        u, v = (int(x) for x in rng.integers(0, N, 2))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    edges = sorted(edges)
    us = np.array([u for u, _ in edges], dtype=np.int64)
    vs = np.array([v for _, v in edges], dtype=np.int64)
    return edges, us, vs


def _fresh_family():
    family = SketchFamily(N, columns=COLUMNS,
                          rng=np.random.default_rng(42))
    sketches = {v: family.new_vertex_sketch(v) for v in range(N)}
    return family, sketches


def _time_sequential(edges):
    family, sketches = _fresh_family()
    start = time.perf_counter()
    for u, v in edges:
        sketches[u].apply_edge(u, v, +1)
        sketches[v].apply_edge(u, v, +1)
    return time.perf_counter() - start, family


def _time_bulk(us, vs):
    family, _ = _fresh_family()
    deltas = np.ones(len(us), dtype=np.int64)
    start = time.perf_counter()
    family.apply_edges_bulk(us, vs, deltas)
    return time.perf_counter() - start, family


def test_exp12_ingest_throughput(benchmark):
    edges, us, vs = _edge_batch()

    # Warm-up (first-call numpy dispatch), then best-of-REPS each way.
    _time_sequential(edges)
    _time_bulk(us, vs)
    seq_time, seq_family = min(
        (_time_sequential(edges) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )
    bulk_time, bulk_family = min(
        (_time_bulk(us, vs) for _ in range(REPS)),
        key=lambda pair: pair[0],
    )

    # Same randomness, same edges => the two paths must leave
    # bit-identical pool state (the tentpole's correctness contract).
    assert np.array_equal(seq_family.pool.cells, bulk_family.pool.cells)

    seq_eps = BATCH / seq_time
    bulk_eps = BATCH / bulk_time
    speedup = seq_eps and bulk_eps / seq_eps
    rows = [{
        "path": name,
        "time/batch (ms)": round(secs * 1e3, 3),
        "edges/sec": round(eps),
    } for name, secs, eps in (
        ("per-edge", seq_time, seq_eps),
        ("bulk", bulk_time, bulk_eps),
    )]
    print_table(rows, title=f"EXP-12 ingestion throughput "
                            f"(n={N}, batch={BATCH}, "
                            f"speedup {speedup:.1f}x)")

    payload = {
        "n": N,
        "batch": BATCH,
        "columns": COLUMNS,
        "sequential_edges_per_sec": seq_eps,
        "bulk_edges_per_sec": bulk_eps,
        "speedup": speedup,
        "reps": REPS,
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= SPEEDUP_FLOOR, (
        f"bulk ingestion speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor (seq {seq_eps:.0f} e/s, "
        f"bulk {bulk_eps:.0f} e/s)"
    )

    benchmark(lambda: _time_bulk(us, vs)[0])
