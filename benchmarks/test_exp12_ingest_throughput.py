"""EXP-12/EXP-13: sketch throughput, per-edge vs vectorized bulk.

The batch-dynamic regime funnels ~O(n^phi) updates per phase through the
per-vertex AGM sketches, so ingestion throughput bounds every
algorithm's wall-clock.  EXP-12 measures edges/second for the same edge
batch ingested

* **sequentially** -- one :meth:`VertexSketch.apply_edge` call per
  (edge, endpoint), the pre-vectorization hot path, and
* **bulk** -- one :meth:`SketchFamily.apply_edges_bulk` call, the
  group-by-endpoint scatter used by ``MPCConnectivity`` phases and
  ``preload``,

asserts the two leave bit-identical sketch state, and writes the
numbers to ``BENCH_ingest.json`` so future PRs can track the perf
trajectory.

EXP-13 is the query-side twin at the same ``(n, batch)`` point: one AGM
halving iteration's worth of work -- a zero test plus one column's
cut-edge recovery for every supernode -- run

* **sequentially** -- ``is_zero()`` + ``sample_column()`` per sketch,
  the pre-vectorization query path, and
* **bulk** -- one fused ``L0Sampler.query_many`` pass over all
  supernodes (the primitive behind
  ``SketchFamily.query_iteration_bulk``, the shape
  ``_agm_replacements`` and the static AGM contraction consume),

asserts bit-identical answers, and merges edges-recovered/second into
the same ``BENCH_ingest.json``.

Both experiments run at two ``(n, batch)`` points -- (512, 256) and
(1024, 512) -- per the ROADMAP's trajectory-tracking item; the file
keeps the n=512 numbers at the top level for continuity and the full
per-point table under ``"points"``.  Families are pinned to the
*sequential* execution backend: these experiments measure the
vectorization win in isolation; the backend comparison is EXP-14
(``test_exp14_backend_throughput.py``).
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

import numpy as np

from conftest import kernels_stamp, numeric_provenance

from repro.analysis import print_table
from repro.lint.stamp import lint_stamp
from repro.sketch import SketchFamily

#: (n, batch, reps) measurement points; the first is the legacy point
#: whose keys stay at the top level of BENCH_ingest.json.
POINTS = [
    (512, 256, 7),
    (1024, 512, 5),
]
# The measured margin is ~9x on a quiet machine; CI sets the env var
# to a conservative floor so shared-runner noise cannot fail the build
# while local/driver runs still enforce the full 5x contract.
SPEEDUP_FLOOR = float(os.environ.get("INGEST_SPEEDUP_FLOOR", "5.0"))
# Same idea for the EXP-13 query side (acceptance contract: >= 3x).
QUERY_SPEEDUP_FLOOR = float(os.environ.get("QUERY_SPEEDUP_FLOOR", "3.0"))

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ingest.json"


def _columns_for(n: int) -> int:
    """The algorithms' default column count, max(4, ceil(2 log2 n))."""
    return max(4, math.ceil(2.0 * math.log2(max(2, n))))


def _edge_batch(n: int, batch: int):
    rng = np.random.default_rng(2024)
    edges = set()
    while len(edges) < batch:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    edges = sorted(edges)
    us = np.array([u for u, _ in edges], dtype=np.int64)
    vs = np.array([v for _, v in edges], dtype=np.int64)
    return edges, us, vs


def _fresh_family(n: int):
    family = SketchFamily(n, columns=_columns_for(n),
                          rng=np.random.default_rng(42),
                          backend="sequential")
    sketches = {v: family.new_vertex_sketch(v) for v in range(n)}
    return family, sketches


def _merge_results(update: dict) -> None:
    """Read-modify-write the shared trajectory file."""
    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload.update(update)
    stamp = lint_stamp()
    payload["lint"] = {"rule_pack": stamp["rule_pack"],
                       "findings": stamp["findings"]}
    payload["kernels"] = kernels_stamp()
    payload["numeric"] = numeric_provenance()
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _time_sequential(n, edges):
    family, sketches = _fresh_family(n)
    start = time.perf_counter()
    for u, v in edges:
        sketches[u].apply_edge(u, v, +1)
        sketches[v].apply_edge(u, v, +1)
    return time.perf_counter() - start, family


def _time_bulk(n, us, vs):
    family, _ = _fresh_family(n)
    deltas = np.ones(len(us), dtype=np.int64)
    start = time.perf_counter()
    family.apply_edges_bulk(us, vs, deltas)
    return time.perf_counter() - start, family


def _measure_ingest_point(n: int, batch: int, reps: int) -> dict:
    edges, us, vs = _edge_batch(n, batch)

    # Warm-up (first-call numpy dispatch), then best-of-reps each way.
    _time_sequential(n, edges)
    _time_bulk(n, us, vs)
    seq_time, seq_family = min(
        (_time_sequential(n, edges) for _ in range(reps)),
        key=lambda pair: pair[0],
    )
    bulk_time, bulk_family = min(
        (_time_bulk(n, us, vs) for _ in range(reps)),
        key=lambda pair: pair[0],
    )

    # Same randomness, same edges => the two paths must leave
    # bit-identical pool state (the tentpole's correctness contract).
    assert np.array_equal(seq_family.pool.cells, bulk_family.pool.cells)

    seq_eps = batch / seq_time
    bulk_eps = batch / bulk_time
    return {
        "n": n,
        "batch": batch,
        "columns": _columns_for(n),
        "sequential_edges_per_sec": seq_eps,
        "bulk_edges_per_sec": bulk_eps,
        "speedup": bulk_eps / seq_eps,
        "reps": reps,
        "_seq_time": seq_time,
        "_bulk_time": bulk_time,
    }


def test_exp12_ingest_throughput(benchmark):
    rows = []
    results = []
    for n, batch, reps in POINTS:
        point = _measure_ingest_point(n, batch, reps)
        results.append(point)
        for name, secs, eps in (
            ("per-edge", point["_seq_time"],
             point["sequential_edges_per_sec"]),
            ("bulk", point["_bulk_time"], point["bulk_edges_per_sec"]),
        ):
            rows.append({
                "n": n,
                "batch": batch,
                "path": name,
                "time/batch (ms)": round(secs * 1e3, 3),
                "edges/sec": round(eps),
            })
    speedups = ", ".join("%.1fx" % p["speedup"] for p in results)
    print_table(rows, title=f"EXP-12 ingestion throughput "
                            f"(speedups: {speedups})")

    points = [{k: v for k, v in p.items() if not k.startswith("_")}
              for p in results]
    update = dict(points[0])  # legacy top-level keys: the n=512 point
    update["points"] = points
    _merge_results(update)

    for point in points:
        assert point["speedup"] >= SPEEDUP_FLOOR, (
            f"bulk ingestion speedup {point['speedup']:.2f}x at "
            f"n={point['n']} below the {SPEEDUP_FLOOR}x floor"
        )

    n, batch, _ = POINTS[0]
    _, us, vs = _edge_batch(n, batch)
    benchmark(lambda: _time_bulk(n, us, vs)[0])


# ---------------------------------------------------------------------------
# EXP-12 deletion-mix point (ROADMAP: deletion-heavy trajectory)
# ---------------------------------------------------------------------------

#: The deletion-mix point: (n, base batch, reps) plus the mix shape --
#: insert everything, delete 60% of it, reinsert half of the deleted
#: edges (the insert->delete->reinsert churn of a turnover-heavy
#: stream).  >=30% of the resulting update sequence is deletions.
MIX_POINT = (512, 256, 7)


def _mixed_update_arrays(n: int, batch: int):
    """An insert/delete/reinsert sequence over one edge batch."""
    edges, us, vs = _edge_batch(n, batch)
    cut = int(0.6 * batch)
    re = cut // 2
    seq_us = np.concatenate([us, us[:cut], us[:re]])
    seq_vs = np.concatenate([vs, vs[:cut], vs[:re]])
    deltas = np.concatenate([
        np.ones(batch, dtype=np.int64),
        -np.ones(cut, dtype=np.int64),
        np.ones(re, dtype=np.int64),
    ])
    return seq_us, seq_vs, deltas


def test_exp12_deletion_mix(benchmark):
    """Deletion-heavy ingestion throughput, per-edge vs bulk.

    Deletions take the same scatter with ``delta = -1``, so the bulk
    win must survive a churn-shaped stream (the regime the batch-
    dynamic deletion phases actually see); recorded under
    ``deletion_mix`` in BENCH_ingest.json.
    """
    n, batch, reps = MIX_POINT
    us, vs, deltas = _mixed_update_arrays(n, batch)
    total = len(deltas)
    delete_fraction = float((deltas < 0).sum()) / total
    assert delete_fraction >= 0.30, "the mix must stay deletion-heavy"

    def run_sequential():
        family, sketches = _fresh_family(n)
        start = time.perf_counter()
        for u, v, d in zip(us.tolist(), vs.tolist(), deltas.tolist()):
            sketches[u].apply_edge(u, v, d)
            sketches[v].apply_edge(u, v, d)
        return time.perf_counter() - start, family

    def run_bulk():
        family, _ = _fresh_family(n)
        start = time.perf_counter()
        family.apply_edges_bulk(us, vs, deltas)
        return time.perf_counter() - start, family

    run_sequential()
    run_bulk()
    seq_time, seq_family = min((run_sequential() for _ in range(reps)),
                               key=lambda pair: pair[0])
    bulk_time, bulk_family = min((run_bulk() for _ in range(reps)),
                                 key=lambda pair: pair[0])
    assert np.array_equal(seq_family.pool.cells, bulk_family.pool.cells)

    speedup = (total / bulk_time) / (total / seq_time)
    print_table(
        [{"path": name, "time/stream (ms)": round(secs * 1e3, 3),
          "updates/sec": round(total / secs)}
         for name, secs in (("per-edge", seq_time), ("bulk", bulk_time))],
        title=f"EXP-12 deletion mix (n={n}, updates={total}, "
              f"{delete_fraction:.0%} deletions, {speedup:.1f}x)",
    )
    _merge_results({
        "deletion_mix": {
            "n": n,
            "updates": total,
            "delete_fraction": delete_fraction,
            "columns": _columns_for(n),
            "sequential_updates_per_sec": total / seq_time,
            "bulk_updates_per_sec": total / bulk_time,
            "speedup": speedup,
            "reps": reps,
        }
    })
    assert speedup >= SPEEDUP_FLOOR, (
        f"deletion-mix bulk speedup {speedup:.2f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
    benchmark(lambda: run_bulk()[0])


# ---------------------------------------------------------------------------
# EXP-13: query throughput (the recovery side of the same pipeline)
# ---------------------------------------------------------------------------

QUERY_COLUMN = 0


def _loaded_samplers(n: int, batch: int):
    """A family with the EXP-12 batch ingested; one sampler per vertex.

    The per-vertex sketches double as the "supernode" sketches of the
    first AGM halving iteration, which is exactly the workload
    ``_agm_replacements`` and the static contraction put on the query
    path.
    """
    _, us, vs = _edge_batch(n, batch)
    family, sketches = _fresh_family(n)
    family.apply_edges_bulk(us, vs, np.ones(len(us), dtype=np.int64))
    samplers = [sketches[v].sampler for v in range(n)]
    return family, samplers


def _query_sequential(family, samplers):
    """Scalar zero test + one-column recovery per supernode."""
    start = time.perf_counter()
    zeros = [
        all(s.matrix.column_is_zero(c) for c in range(family.columns))
        for s in samplers
    ]
    edges = [
        None if zero else s.sample_column(QUERY_COLUMN)
        for s, zero in zip(samplers, zeros)
    ]
    elapsed = time.perf_counter() - start
    return elapsed, zeros, edges


def _query_bulk(family, samplers):
    """One fused vectorized zero-test + recovery pass for all."""
    from repro.sketch import L0Sampler

    start = time.perf_counter()
    zeros, found = L0Sampler.query_many(samplers, QUERY_COLUMN)
    elapsed = time.perf_counter() - start
    edges = [None if idx < 0 else int(idx) for idx in found]
    return elapsed, [bool(z) for z in zeros], edges


def _measure_query_point(n: int, batch: int, reps: int) -> dict:
    family, samplers = _loaded_samplers(n, batch)

    # Warm-up, then best-of-reps each way.
    _query_sequential(family, samplers)
    _query_bulk(family, samplers)
    seq_time, seq_zeros, seq_edges = min(
        (_query_sequential(family, samplers) for _ in range(reps)),
        key=lambda triple: triple[0],
    )
    bulk_time, bulk_zeros, bulk_edges = min(
        (_query_bulk(family, samplers) for _ in range(reps)),
        key=lambda triple: triple[0],
    )

    # The batched query path must answer exactly what the scalar one
    # does (the tentpole's correctness contract, mirroring EXP-12).
    assert bulk_zeros == seq_zeros
    assert bulk_edges == seq_edges

    recovered = sum(1 for e in seq_edges if e is not None)
    assert recovered > 0, "workload must actually recover edges"
    return {
        "n": n,
        "batch": batch,
        "query_supernodes": len(samplers),
        "query_column": QUERY_COLUMN,
        "query_edges_recovered": recovered,
        "query_sequential_recovered_per_sec": recovered / seq_time,
        "query_bulk_recovered_per_sec": recovered / bulk_time,
        "query_speedup": seq_time / bulk_time,
        "query_reps": reps,
        "_seq_time": seq_time,
        "_bulk_time": bulk_time,
    }


def test_exp13_query_throughput(benchmark):
    rows = []
    results = []
    for n, batch, reps in POINTS:
        point = _measure_query_point(n, batch, reps)
        results.append((n, batch, point))
        for name, secs, rps in (
            ("per-supernode", point["_seq_time"],
             point["query_sequential_recovered_per_sec"]),
            ("bulk", point["_bulk_time"],
             point["query_bulk_recovered_per_sec"]),
        ):
            rows.append({
                "n": n,
                "batch": batch,
                "path": name,
                "time/iteration (ms)": round(secs * 1e3, 3),
                "edges recovered/sec": round(rps),
            })
    speedups = ", ".join("%.1fx" % p["query_speedup"]
                         for _, _, p in results)
    print_table(rows, title=f"EXP-13 query throughput "
                            f"(speedups: {speedups})")

    # Merge into the shared trajectory file: legacy top-level keys from
    # the n=512 point, per-point numbers folded into the EXP-12 entries
    # (matched on (n, batch), so a stale or reordered file on disk can
    # never pair query numbers with the wrong measurement point).
    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    points = payload.get("points", [])
    clean = []
    for n, batch, point in results:
        entry = {k: v for k, v in point.items() if not k.startswith("_")}
        clean.append(entry)
        match = [p for p in points
                 if (p.get("n"), p.get("batch")) == (n, batch)]
        if match:
            match[0].update(entry)
        else:
            points.append(entry)
    payload.update(clean[0])
    payload["points"] = points
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    for n, _, point in results:
        assert point["query_speedup"] >= QUERY_SPEEDUP_FLOOR, (
            f"bulk query speedup {point['query_speedup']:.2f}x at n={n} "
            f"below the {QUERY_SPEEDUP_FLOOR}x floor"
        )

    n, batch, _ = POINTS[0]
    family, samplers = _loaded_samplers(n, batch)
    benchmark(lambda: _query_bulk(family, samplers)[0])
