"""EXP-3 ("Fig 2"): query rounds -- maintained forest vs AGM static.

Both process updates in O(1) rounds, but only the maintained-forest
algorithm answers queries in O(1) rounds; the sketch-only baseline must
run the O(log n) AGM contraction (design choice D1).  We sweep n on a
path-plus-churn workload that forces multiple halving iterations.
"""

from __future__ import annotations

import pytest

from conftest import standard_config
from repro.analysis import agm_query_rounds_bound, print_table
from repro.baselines import AGMStaticConnectivity
from repro.core import MPCConnectivity
from repro.streams import as_batches, path_insertions

SIZES = [64, 128, 256, 512]


def _query_rounds(n: int):
    ours = MPCConnectivity(standard_config(n, seed=n))
    agm = AGMStaticConnectivity(standard_config(n, seed=n + 1))
    for batch in as_batches(path_insertions(n, seed=n), 16):
        ours.apply_batch(batch)
        agm.apply_batch(batch)
    _, ours_query = ours.query_with_metrics()
    _, agm_query = agm.query_with_metrics()
    return {
        "n": n,
        "ours query rounds": ours_query.rounds,
        "agm query rounds": agm_query.rounds,
        "agm iterations": agm.stats["query_iterations"],
        "agm bound O(log n)": int(agm_query_rounds_bound(n)),
        "update rounds (ours)": ours.max_rounds(),
        "update rounds (agm)": agm.max_rounds(),
    }


def test_exp3_query_rounds(benchmark):
    rows = [_query_rounds(n) for n in SIZES]
    print_table(rows, title="EXP-3 query rounds: maintained forest vs "
                            "AGM static (path workload)")
    ours_series = [row["ours query rounds"] for row in rows]
    agm_series = [row["agm query rounds"] for row in rows]
    # Ours is constant in n; AGM pays iterations every query.
    assert max(ours_series) - min(ours_series) <= 2
    assert all(a > o for a, o in zip(agm_series, ours_series))
    assert all(row["agm iterations"] >= 2 for row in rows)
    # Both update in constant rounds (the paper keeps this property).
    assert all(row["update rounds (ours)"] <= 80 for row in rows)
    assert all(row["update rounds (agm)"] <= 20 for row in rows)

    benchmark(lambda: _query_rounds(64))
