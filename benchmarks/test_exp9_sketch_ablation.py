"""EXP-9 (ablation D3): sketch columns vs deletion recovery failures.

The paper keeps t = O(log n) independent sketches per vertex so that
batch deletions can rerun the AGM contraction w.h.p.  This ablation
sweeps t on a deletion-heavy workload and records (a) how often a
fragment's replacement edge could not be recovered and (b) whether the
component structure drifted from the oracle -- the empirical content of
the "w.h.p." claim and of the paper's batch-size polylog overhead.
"""

from __future__ import annotations

import pytest

from conftest import standard_config
from repro.analysis import print_table
from repro.baselines import DynamicConnectivityOracle
from repro.core import MPCConnectivity
from repro.streams import ChurnStream

N = 128
COLUMNS = [1, 2, 4, 8, 16]
TRIALS = 3


def _run(columns: int, seed: int):
    alg = MPCConnectivity(standard_config(N, seed=seed), columns=columns)
    oracle = DynamicConnectivityOracle(N)
    stream = ChurnStream(N, seed=seed + 1, delete_fraction=0.45,
                         target_edges=N)
    for batch in stream.batches(25, 8):
        alg.apply_batch(batch)
        oracle.apply_batch(batch)
    drift = alg.num_components() - oracle.num_components()
    return alg.stats["sketch_failures"], drift


def test_exp9_sketch_ablation(benchmark):
    rows = []
    for columns in COLUMNS:
        failures = 0
        drifts = 0
        for trial in range(TRIALS):
            f, d = _run(columns, seed=1000 * columns + trial)
            failures += f
            drifts += abs(d)
        rows.append({
            "columns t": columns,
            "trials": TRIALS,
            "recovery failures": failures,
            "component drift": drifts,
        })
    print_table(rows, title=f"EXP-9 sketch-column ablation "
                            f"(n={N}, deletion-heavy churn)")

    # Shape: failures vanish once t reaches the O(log n) regime.
    by_cols = {row["columns t"]: row for row in rows}
    assert by_cols[16]["recovery failures"] == 0
    assert by_cols[16]["component drift"] == 0
    assert by_cols[8]["recovery failures"] <= \
        max(1, by_cols[1]["recovery failures"])
    # Failures and drift move together: a drifted run must have failed.
    for row in rows:
        if row["component drift"]:
            assert row["recovery failures"] > 0

    benchmark(lambda: _run(4, seed=7))
