"""EXP-2 ("Fig 1"): total memory vs number of edges m.

The paper's headline separation: our total memory is ~O(n) --
independent of m -- while the prior-work regime ([ILMP19]/[NO21],
modelled by FullGraphConnectivity) stores Theta(n + m).  We sweep the
edge density at fixed n and record both footprints; the crossover
appears where m exceeds the sketch polylog overhead.
"""

from __future__ import annotations

import pytest

from conftest import standard_config
from repro.analysis import print_table
from repro.baselines import FullGraphConnectivity
from repro.core import MPCConnectivity
from repro.mpc import MPCConfig
from repro.streams import as_batches, erdos_renyi_insertions

N = 256
DENSITIES = [1, 2, 4, 8, 16, 32, 64]


def _memory_at_density(density: int):
    m = density * N
    ours = MPCConnectivity(standard_config(N, seed=density))
    theirs = FullGraphConnectivity(standard_config(N, seed=density))
    for batch in as_batches(erdos_renyi_insertions(N, m, seed=density),
                            16):
        ours.apply_batch(batch)
        theirs.apply_batch(batch)
    return {
        "m": ours.num_edges,
        "m/n": density,
        "ours(words)": ours.total_memory_words(),
        "full-graph(words)": theirs.total_memory_words(),
        "ratio": theirs.total_memory_words()
        / max(1, ours.total_memory_words()),
    }


def test_exp2_memory_vs_m(benchmark):
    rows = [_memory_at_density(d) for d in DENSITIES]
    print_table(rows, title=f"EXP-2 total memory vs m (n={N}, phi=0.5)")

    ours_trace = [row["ours(words)"] for row in rows]
    full_trace = [row["full-graph(words)"] for row in rows]
    # Shape claim 1: our footprint is flat in m (only the O(n) forest
    # component varies as the graph saturates).
    assert max(ours_trace) <= 1.05 * min(ours_trace)
    # Shape claim 2: the baseline grows linearly with m.
    assert full_trace[-1] >= 5 * full_trace[0]
    # Shape claim 3: the baseline eventually overtakes our (polylog-
    # heavy but m-independent) footprint trend: its growth over the
    # sweep exceeds ours by the added-edge volume.
    ours_growth = ours_trace[-1] - ours_trace[0]
    full_growth = full_trace[-1] - full_trace[0]
    assert full_growth > 10 * max(1, ours_growth)

    benchmark(lambda: _memory_at_density(4))
