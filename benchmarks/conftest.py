"""Shared helpers for the benchmark harness.

Every ``test_expN_*`` module reproduces one experiment from DESIGN.md's
per-experiment index, prints a paper-style table (captured into
EXPERIMENTS.md), and asserts the *shape* claims of the corresponding
theorem.  ``pytest benchmarks/ --benchmark-only`` runs them; pass ``-s``
to see the tables live.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro import kernels
from repro.baselines import DynamicConnectivityOracle
from repro.core import MPCConnectivity
from repro.lint.stamp import lint_stamp, numeric_stamp
from repro.mpc import MPCConfig
from repro.streams import ChurnStream


@pytest.fixture(scope="session", autouse=True)
def _lint_gate():
    """Fail every EXP report fast if ``src/`` has lint findings.

    A benchmark number measured on a tree that violates the MPC
    conventions (uncharged bulk ops, Python loops in ``@hot_path``
    kernels) is not a trajectory point -- refuse to record it.  The
    verdict is cached per process (``repro.lint.stamp``), so the whole
    benchmark run pays for one lint pass.
    """
    stamp = lint_stamp()
    if stamp["findings"]:
        pytest.fail(
            "repro.lint found {} violation(s); fix them before "
            "recording benchmark numbers:\n{}".format(
                stamp["findings"], "\n".join(stamp["errors"])
            ),
            pytrace=False,
        )
    return stamp


def kernels_stamp() -> Dict[str, object]:
    """Kernel-tier provenance for ``BENCH_ingest.json``.

    Every write site stamps this next to the ``lint`` field so each
    trajectory point records *which* hot-path implementations produced
    it (PR 8): the active ``REPRO_KERNELS`` tier, whether the compiled
    tier was even available, and how often ``auto`` silently fell back
    to numpy in this process.
    """
    return {
        "tier": kernels.active_tier(),
        "numba_available": kernels.numba_available(),
        "auto_fallbacks": kernels.counters()["auto_fallbacks"],
    }


def numeric_provenance() -> Dict[str, object]:
    """RL013-RL016 proof provenance for ``BENCH_ingest.json``.

    Stamped next to ``lint`` and ``kernels`` at every write site: the
    rule-pack version and the kernel-tier verdict counts, so a
    trajectory point records that the kernels it measured verified
    overflow-free and residue-canonical (all ``proved`` on a healthy
    tree; cached per process via ``repro.lint.stamp``).
    """
    stamp = numeric_stamp()
    return {
        "rule_pack": stamp["rule_pack"],
        "verdicts": stamp["verdicts"],
        "findings": stamp["findings"],
    }


def run_churn(alg, n: int, phases: int, batch_size: int, seed: int,
              delete_fraction: float = 0.3, target_density: float = 2.0,
              oracle: bool = False):
    """Drive an algorithm with a standard churn stream; returns the
    oracle (if requested) for quality checks."""
    stream = ChurnStream(n, seed=seed, delete_fraction=delete_fraction,
                         target_edges=int(target_density * n))
    check = DynamicConnectivityOracle(n) if oracle else None
    for batch in stream.batches(phases, batch_size):
        alg.apply_batch(batch)
        if check is not None:
            check.apply_batch(batch)
    return check


def summarize_phases(alg) -> Dict[str, object]:
    rounds = [p.rounds for p in alg.phases if p.batch_size > 0]
    return {
        "phases": len(rounds),
        "rounds/batch(max)": max(rounds, default=0),
        "rounds/batch(med)": sorted(rounds)[len(rounds) // 2]
        if rounds else 0,
        "peak_memory": alg.cluster.metrics.peak_total_memory,
        # Where the phases executed (PR 3 follow-on): experiment tables
        # stay interpretable when CI re-runs them on a worker fleet.
        "backend": alg.cluster.backend.describe(),
    }


def standard_config(n: int, phi: float = 0.5, seed: int = 0) -> MPCConfig:
    return MPCConfig(n=n, phi=phi, seed=seed)
