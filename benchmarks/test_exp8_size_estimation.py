"""EXP-8 ("Table 4"): matching-size estimation accuracy and memory.

Theorems 8.5/8.6: an O(alpha) estimate of the maximum matching size in
~O(n/alpha^2) (insertion-only) or ~O(n^2/alpha^4) (dynamic) memory.  We
sweep alpha and the planted matching size; the estimate must track OPT
within the envelope while the Tester footprint shrinks with alpha.
"""

from __future__ import annotations

import pytest

from conftest import standard_config
from repro.analysis import print_table, size_estimation_memory_bound
from repro.core import MatchingSizeEstimator
from repro.streams import as_batches, planted_matching_insertions

N = 256
ALPHAS = [2.0, 4.0]
PLANTED = [16, 32, 64]


def _estimate(alpha: float, dynamic: bool, size: int, seed: int):
    alg = MatchingSizeEstimator(standard_config(N, seed=seed),
                                alpha=alpha, dynamic=dynamic)
    updates = planted_matching_insertions(N, size=size, noise=size,
                                          seed=seed)
    for batch in as_batches(updates, 16):
        alg.apply_batch(batch)
    return alg


def test_exp8_size_estimation(benchmark):
    rows = []
    for dynamic in (False, True):
        for alpha in ALPHAS:
            for size in PLANTED:
                alg = _estimate(alpha, dynamic, size,
                                seed=int(alpha) * 100 + size)
                est = alg.estimate()
                rows.append({
                    "stream": "dynamic" if dynamic else "ins-only",
                    "alpha": alpha,
                    "OPT>=": size,
                    "estimate": est,
                    "OPT/est": size / max(est, 1.0),
                    "est/OPT": est / size,
                    "memory": alg.total_memory_words(),
                    "memory_bound": int(size_estimation_memory_bound(
                        N, alpha, dynamic)),
                })
    print_table(rows, title=f"EXP-8 matching size estimation (n={N})")

    for row in rows:
        assert row["OPT/est"] <= 8 * row["alpha"], row
        assert row["est/OPT"] <= 8 * row["alpha"], row
        assert row["memory"] <= row["memory_bound"], row
    # Estimates grow with the planted matching (monotone signal).
    for dynamic in ("ins-only", "dynamic"):
        for alpha in ALPHAS:
            trace = [row["estimate"] for row in rows
                     if row["stream"] == dynamic
                     and row["alpha"] == alpha]
            assert trace[-1] >= trace[0]

    benchmark(lambda: _estimate(4.0, False, 16, seed=0).estimate())
