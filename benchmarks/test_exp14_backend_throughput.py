"""EXP-14: execution-backend throughput, sequential vs shared-memory.

EXP-12/13 measure the vectorization win inside one process; EXP-14
measures the *execution backend* layer on top of it
(:mod:`repro.mpc.backend`): the same fused ingestion + query workload
run on

* the ``sequential`` backend (in-process, the default), and
* the ``shared_memory`` backend at 2 and 4 worker processes, where the
  family's :class:`~repro.sketch.sparse_recovery.RecoveryPool` lives in
  shared memory and vertex rows are sharded across workers.

One rep is a realistic phase-shaped unit of work at n=1024: bulk-ingest
a 4096-edge batch, answer one AGM halving iteration's fused zero-test +
cut-edge recovery for every vertex row, then bulk-delete the batch
(which keeps the pool state identical across reps and backends).  The
experiment asserts the parallel backend is **bit-identical** to the
sequential one -- same pool cells, same query answers -- and records
wall-clock throughput per backend into ``BENCH_ingest.json``.

The speedup gate is core- and tier-aware: descriptor shipping cannot
beat a single CPU, so the acceptance floor (``BACKEND_SPEEDUP_FLOOR``,
combined ingestion+query at 4 workers: >2x on the compiled
``REPRO_KERNELS`` tier, >1.5x on the numpy fallback) arms only when at
least 4 CPUs are actually available (affinity-aware); below that the
numbers are recorded, the parity assertions still run, and a sanity
floor keeps the overhead bounded.  The recorded ``cpus`` and
``kernels`` fields make every trajectory point interpretable.

``test_exp14_small_batch_fanout`` adds the *small-batch* point (batch
<= 64): a dispatch that small is all fan-out latency, so it isolates
the descriptor transport -- the preallocated shared-memory ring buffer
(tokens only on the pipe) against the legacy per-call pickled
descriptors -- and records the win under
``exp14_backend.small_batch`` with its own core-aware gate
(``SMALL_BATCH_RING_FLOOR``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import kernels_stamp, numeric_provenance

from repro import kernels
from repro.analysis import print_table
from repro.lint.stamp import lint_stamp
from repro.mpc.backend import (
    SharedMemoryBackend,
    available_cpus,
    get_backend,
)
from repro.sketch import SketchFamily

N = 1024
BATCH = 4096
COLUMNS = 20  # max(4, 2*log2(n)) for n = 1024, the algorithms' default
REPS = 5
WORKER_COUNTS = (2, 4)
QUERY_COLUMN = 0

#: The small-batch fan-out point: at batch <= 64 a dispatch is all
#: latency, no work, so it measures the descriptor *transport* -- the
#: ring buffer vs per-call pipe pickling.
SMALL_BATCH = 64
SMALL_REPS = 30
SMALL_WORKERS = 2

#: Floor on the 4-worker combined speedup.  Defaults are tier-aware
#: (PR 8): on the compiled kernel tier the slimmed dispatch loop plus
#: jitted cores must clear the 2x acceptance contract at >= 4 CPUs; on
#: the numpy tier the original 1.5x contract holds; and a
#: bounded-overhead sanity check (descriptor shipping must stay within
#: ~3x of sequential) applies when the host cannot physically run
#: workers in parallel -- a 1-CPU container measures ~0.5-0.8x.
if available_cpus() >= 4:
    _DEFAULT_FLOOR = "2.0" if kernels.active_tier() == "numba" else "1.5"
else:
    _DEFAULT_FLOOR = "0.35"
SPEEDUP_FLOOR = float(os.environ.get("BACKEND_SPEEDUP_FLOOR",
                                     _DEFAULT_FLOOR))

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ingest.json"


def _edge_batch(count: int = BATCH, seed: int = 2026):
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < count:
        u, v = (int(x) for x in rng.integers(0, N, 2))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    edges = sorted(edges)
    us = np.array([u for u, _ in edges], dtype=np.int64)
    vs = np.array([v for _, v in edges], dtype=np.int64)
    return us, vs


def _run_backend(backend, us, vs):
    """Best-of-REPS phase time on one backend, plus final state."""
    family = SketchFamily(N, columns=COLUMNS,
                          rng=np.random.default_rng(7), backend=backend)
    samplers = [family.new_vertex_sketch(v).sampler for v in range(N)]
    ones = np.ones(len(us), dtype=np.int64)

    def phase():
        family.apply_edges_bulk(us, vs, ones)
        answers = family.query_iteration_bulk(samplers, QUERY_COLUMN)
        family.apply_edges_bulk(us, vs, -ones)
        return answers

    phase()  # warm-up (numpy dispatch, worker code paths)
    best = float("inf")
    answers = None
    for _ in range(REPS):
        start = time.perf_counter()
        answers = phase()
        best = min(best, time.perf_counter() - start)

    # Leave the batch ingested so pool cells can be compared across
    # backends in a non-trivial state.
    family.apply_edges_bulk(us, vs, ones)
    return best, answers, family


def test_exp14_backend_throughput(benchmark):
    us, vs = _edge_batch()
    cpus = available_cpus()

    seq_time, seq_answers, seq_family = _run_backend(
        get_backend("sequential"), us, vs
    )
    rows = [{
        "backend": "sequential",
        "workers": 1,
        "time/phase (ms)": round(seq_time * 1e3, 3),
        "edges+queries/sec": round((2 * BATCH + N) / seq_time),
        "speedup": 1.0,
    }]

    measured = {}
    for workers in WORKER_COUNTS:
        backend = SharedMemoryBackend(num_workers=workers)
        try:
            shm_time, shm_answers, shm_family = _run_backend(
                backend, us, vs
            )
            # The acceptance contract: the parallel backend must be
            # bit-identical to the sequential one -- same pool cells,
            # same zero tests, same recovered edges.
            assert np.array_equal(seq_family.pool.cells,
                                  shm_family.pool.cells)
            assert np.array_equal(seq_answers[0], shm_answers[0])
            assert seq_answers[1] == shm_answers[1]
        finally:
            backend.close()
        speedup = seq_time / shm_time
        measured[str(workers)] = {
            "time_per_phase_sec": shm_time,
            "throughput_per_sec": (2 * BATCH + N) / shm_time,
            "speedup": speedup,
        }
        rows.append({
            "backend": "shared_memory",
            "workers": workers,
            "time/phase (ms)": round(shm_time * 1e3, 3),
            "edges+queries/sec": round((2 * BATCH + N) / shm_time),
            "speedup": round(speedup, 2),
        })

    print_table(rows, title=f"EXP-14 backend throughput "
                            f"(n={N}, batch={BATCH}, cpus={cpus}, "
                            f"floor {SPEEDUP_FLOOR}x)")

    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    # Merge-update: the small-batch test nests its point under the same
    # key, and a solo run of this test must not wipe it.
    payload.setdefault("exp14_backend", {}).update({
        "n": N,
        "batch": BATCH,
        "columns": COLUMNS,
        "reps": REPS,
        "cpus": cpus,
        "sequential_time_per_phase_sec": seq_time,
        "sequential_throughput_per_sec": (2 * BATCH + N) / seq_time,
        "workers": measured,
        "speedup_4_workers": measured["4"]["speedup"],
        "speedup_floor": SPEEDUP_FLOOR,
        "kernel_tier": kernels.active_tier(),
    })
    stamp = lint_stamp()
    payload["lint"] = {"rule_pack": stamp["rule_pack"],
                       "findings": stamp["findings"]}
    payload["kernels"] = kernels_stamp()
    payload["numeric"] = numeric_provenance()
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert measured["4"]["speedup"] >= SPEEDUP_FLOOR, (
        f"4-worker combined ingestion+query speedup "
        f"{measured['4']['speedup']:.2f}x below the {SPEEDUP_FLOOR}x "
        f"floor ({cpus} cpus available)"
    )

    # Benchmark one sequential ingest+delete round on the warm family
    # (the full _run_backend would respawn workers per round).
    ones = np.ones(len(us), dtype=np.int64)

    def one_round():
        seq_family.apply_edges_bulk(us, vs, -ones)
        seq_family.apply_edges_bulk(us, vs, ones)

    benchmark(one_round)


# ---------------------------------------------------------------------------
# Small-batch fan-out latency: ring transport vs pipe pickling
# ---------------------------------------------------------------------------

#: Floor on the ring-vs-pipe small-batch speedup.  The ring removes
#: per-dispatch descriptor pickling, which does not need spare cores to
#: win -- but on a contended 1/2-CPU host the numbers are scheduler
#: noise, so the full >=1x gate arms with the same core-awareness as
#: the main EXP-14 floor and a loose sanity bound applies below that.
_SMALL_DEFAULT_FLOOR = "1.0" if available_cpus() >= 4 else "0.5"
SMALL_BATCH_RING_FLOOR = float(os.environ.get("SMALL_BATCH_RING_FLOOR",
                                              _SMALL_DEFAULT_FLOOR))


def _run_small_batch(backend, us, vs):
    """Best-of-reps time for one small ingest+delete dispatch pair."""
    family = SketchFamily(N, columns=COLUMNS,
                          rng=np.random.default_rng(7), backend=backend)
    ones = np.ones(len(us), dtype=np.int64)

    def phase():
        family.apply_edges_bulk(us, vs, ones)
        family.apply_edges_bulk(us, vs, -ones)

    phase()  # warm-up
    best = float("inf")
    for _ in range(SMALL_REPS):
        start = time.perf_counter()
        phase()
        best = min(best, time.perf_counter() - start)
    family.apply_edges_bulk(us, vs, ones)
    return best, family


def test_exp14_small_batch_fanout():
    """The tentpole's latency claim: at batch <= 64 the ring transport
    ships only (seq, offset, length) tokens -- no per-call descriptor
    pickling -- and must not lose to the pickled-pipe path."""
    us, vs = _edge_batch(count=SMALL_BATCH, seed=1312)
    cpus = available_cpus()

    seq_time, seq_family = _run_small_batch(get_backend("sequential"),
                                            us, vs)

    ring_backend = SharedMemoryBackend(num_workers=SMALL_WORKERS)
    try:
        ring_time, ring_family = _run_small_batch(ring_backend, us, vs)
        # Every small-batch dispatch must have taken the ring: zero
        # pickled descriptor fallbacks (the unit-level contract).
        assert ring_backend.ring_dispatches > 0
        assert ring_backend.raw_dispatches == 0
        assert np.array_equal(seq_family.pool.cells,
                              ring_family.pool.cells)
    finally:
        ring_backend.close()

    pipe_backend = SharedMemoryBackend(num_workers=SMALL_WORKERS,
                                       ring_words=0)
    try:
        pipe_time, pipe_family = _run_small_batch(pipe_backend, us, vs)
        assert pipe_backend.ring_dispatches == 0
        assert np.array_equal(seq_family.pool.cells,
                              pipe_family.pool.cells)
    finally:
        pipe_backend.close()

    ring_vs_pipe = pipe_time / ring_time
    rows = [
        {"transport": "sequential (no fan-out)", "time/phase (us)":
            round(seq_time * 1e6, 1), "speedup vs pipe": "-"},
        {"transport": "pipe (pickled descriptors)", "time/phase (us)":
            round(pipe_time * 1e6, 1), "speedup vs pipe": 1.0},
        {"transport": "ring (seq/offset tokens)", "time/phase (us)":
            round(ring_time * 1e6, 1),
            "speedup vs pipe": round(ring_vs_pipe, 2)},
    ]
    print_table(rows, title=f"EXP-14 small-batch fan-out latency "
                            f"(n={N}, batch={SMALL_BATCH}, "
                            f"workers={SMALL_WORKERS}, cpus={cpus}, "
                            f"floor {SMALL_BATCH_RING_FLOOR}x)")

    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload.setdefault("exp14_backend", {})["small_batch"] = {
        "n": N,
        "batch": SMALL_BATCH,
        "workers": SMALL_WORKERS,
        "reps": SMALL_REPS,
        "cpus": cpus,
        "sequential_time_per_phase_sec": seq_time,
        "pipe_time_per_phase_sec": pipe_time,
        "ring_time_per_phase_sec": ring_time,
        "ring_vs_pipe_speedup": ring_vs_pipe,
        "ring_floor": SMALL_BATCH_RING_FLOOR,
        "kernel_tier": kernels.active_tier(),
    }
    stamp = lint_stamp()
    payload["lint"] = {"rule_pack": stamp["rule_pack"],
                       "findings": stamp["findings"]}
    payload["kernels"] = kernels_stamp()
    payload["numeric"] = numeric_provenance()
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert ring_vs_pipe >= SMALL_BATCH_RING_FLOOR, (
        f"ring transport small-batch speedup {ring_vs_pipe:.2f}x vs the "
        f"pipe path is below the {SMALL_BATCH_RING_FLOOR}x floor "
        f"({cpus} cpus available)"
    )
