"""EXP-1 ("Table 1"): resource summary for every algorithm.

One row per algorithm: rounds per batch (measured vs the O(1/phi)
claim), peak total memory (measured vs the theorem's ~O(n) class
bound), and the quality metric of the maintained solution.
"""

from __future__ import annotations

import pytest

from conftest import run_churn, standard_config, summarize_phases
from repro.analysis import (
    connectivity_total_memory_bound,
    matching_memory_bound_dynamic,
    matching_memory_bound_insert_only,
    msf_approx_memory_bound,
    print_table,
    rounds_bound_per_batch,
    size_estimation_memory_bound,
)
from repro.baselines import maximum_matching_size, msf_weight
from repro.core import (
    AKLYMatching,
    ApproxMSF,
    DynamicBipartiteness,
    ExactMSFInsertOnly,
    GreedyMatchingInsertOnly,
    MatchingSizeEstimator,
    MPCConnectivity,
)
from repro.streams import as_batches, planted_matching_insertions, weighted_insertions

N = 256
PHI = 0.5
BATCH = 16
ALPHA = 4.0


def _connectivity_row():
    alg = MPCConnectivity(standard_config(N, PHI, seed=1))
    oracle = run_churn(alg, N, phases=30, batch_size=BATCH, seed=2,
                       oracle=True)
    stats = summarize_phases(alg)
    ok = alg.num_components() == oracle.num_components()
    return {
        "algorithm": "connectivity (Thm 1.1)",
        **stats,
        "memory_bound": int(connectivity_total_memory_bound(N)),
        "quality": "components exact" if ok else "MISMATCH",
    }


def _msf_exact_row():
    alg = ExactMSFInsertOnly(standard_config(N, PHI, seed=3))
    updates = weighted_insertions(N, 3 * N, max_weight=100, seed=4)
    for batch in as_batches(updates, BATCH):
        alg.apply_batch(batch)
    ref = msf_weight(N, [(u.u, u.v, u.weight) for u in updates])
    stats = summarize_phases(alg)
    exact = abs(alg.msf_weight() - ref) < 1e-9
    return {
        "algorithm": "exact MSF ins-only (Thm 1.2i)",
        **stats,
        "memory_bound": int(connectivity_total_memory_bound(N)),
        "quality": "weight exact" if exact else "MISMATCH",
    }


def _msf_approx_row():
    eps = 0.25
    alg = ApproxMSF(standard_config(N, PHI, seed=5), eps=eps,
                    max_weight=100)
    updates = weighted_insertions(N, 2 * N, max_weight=100, seed=6)
    live = {}
    for batch in as_batches(updates, BATCH):
        alg.apply_batch(batch)
        for up in batch:
            live[up.edge] = up.weight
    ref = msf_weight(N, [(u, v, w) for (u, v), w in live.items()])
    est = alg.weight_estimate()
    stats = summarize_phases(alg)
    ok = ref - 1e-6 <= est <= (1 + eps) * ref + 1e-6
    return {
        "algorithm": "approx MSF eps=.25 (Thm 1.2ii)",
        **stats,
        "memory_bound": int(msf_approx_memory_bound(N, eps, 100)),
        "quality": f"w/w* = {est / ref:.3f}" + ("" if ok else " VIOLATION"),
    }


def _bipartiteness_row():
    alg = DynamicBipartiteness(standard_config(N, PHI, seed=7))
    run_churn(alg, N, phases=15, batch_size=BATCH // 2, seed=8)
    stats = summarize_phases(alg)
    return {
        "algorithm": "bipartiteness (Thm 7.3)",
        **stats,
        "memory_bound": int(3 * connectivity_total_memory_bound(N)),
        "quality": f"bipartite={alg.is_bipartite()}",
    }


def _matching_rows():
    rows = []
    updates = planted_matching_insertions(N, size=N // 4, noise=N,
                                          seed=9)
    opt = maximum_matching_size(N, [u.edge for u in updates])

    greedy = GreedyMatchingInsertOnly(standard_config(N, PHI, seed=10),
                                      alpha=ALPHA)
    for batch in as_batches(updates, BATCH):
        greedy.apply_batch(batch)
    stats = summarize_phases(greedy)
    rows.append({
        "algorithm": f"greedy matching a={ALPHA} (Thm 8.1)",
        **stats,
        "memory_bound": int(matching_memory_bound_insert_only(N, ALPHA)),
        "quality": f"OPT/alg = {opt / max(1, greedy.matching_size()):.2f}",
    })

    akly = AKLYMatching(standard_config(N, PHI, seed=11), alpha=ALPHA)
    for batch in as_batches(updates, BATCH):
        akly.apply_batch(batch)
    stats = summarize_phases(akly)
    rows.append({
        "algorithm": f"AKLY matching a={ALPHA} (Thm 8.2)",
        **stats,
        "memory_bound": int(matching_memory_bound_dynamic(N, ALPHA)),
        "quality": f"OPT/alg = {opt / max(1, akly.matching_size()):.2f}",
    })

    for dynamic in (False, True):
        est_alg = MatchingSizeEstimator(
            standard_config(N, PHI, seed=12 + dynamic), alpha=ALPHA,
            dynamic=dynamic,
        )
        for batch in as_batches(updates, BATCH):
            est_alg.apply_batch(batch)
        stats = summarize_phases(est_alg)
        kind = "dyn" if dynamic else "ins"
        rows.append({
            "algorithm": f"size estimation {kind} a={ALPHA} (Thm 8.5/8.6)",
            **stats,
            "memory_bound": int(
                size_estimation_memory_bound(N, ALPHA, dynamic)
            ),
            "quality": f"OPT/est = {opt / max(1.0, est_alg.estimate()):.2f}",
        })
    return rows


def test_exp1_resource_summary(benchmark):
    rows = [_connectivity_row(), _msf_exact_row(), _msf_approx_row(),
            _bipartiteness_row()]
    rows.extend(_matching_rows())
    bound = rounds_bound_per_batch(PHI)
    for row in rows:
        row["rounds_bound"] = int(bound)
    print_table(
        rows,
        columns=["algorithm", "phases", "rounds/batch(max)",
                 "rounds_bound", "peak_memory", "memory_bound",
                 "backend", "quality"],
        title=f"EXP-1 resource summary (n={N}, phi={PHI}, batch={BATCH})",
    )
    # Every row records where its phases executed (backend.describe()).
    for row in rows:
        assert row["backend"], row
    # Theorem checks: constant rounds and memory within the class bound.
    for row in rows:
        assert row["rounds/batch(max)"] <= row["rounds_bound"], row
        assert row["peak_memory"] <= row["memory_bound"], row
        assert "MISMATCH" not in str(row["quality"])
        assert "VIOLATION" not in str(row["quality"])

    # Timed kernel: one connectivity phase on a fresh instance.
    def one_phase():
        alg = MPCConnectivity(standard_config(64, PHI, seed=99))
        from repro.types import ins
        alg.apply_batch([ins(i, i + 1) for i in range(16)])
        return alg.num_components()

    benchmark(one_phase)
