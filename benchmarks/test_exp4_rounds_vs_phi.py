"""EXP-4 ("Fig 3"): rounds per batch as a function of phi and n.

Theorem 6.7 promises O(1/phi) rounds per batch.  Two sweeps verify the
shape: (a) rounds grow as phi shrinks (deeper aggregation trees on more,
smaller machines); (b) for fixed phi, rounds are flat in n.
"""

from __future__ import annotations

import pytest

from conftest import run_churn, standard_config
from repro.analysis import print_table, rounds_bound_per_batch
from repro.core import MPCConnectivity
from repro.mpc import MPCConfig

PHIS = [0.25, 0.33, 0.5, 0.67]
SIZES = [64, 128, 256, 512]


def _max_rounds(n: int, phi: float, seed: int) -> int:
    alg = MPCConnectivity(MPCConfig(n=n, phi=phi, seed=seed))
    run_churn(alg, n, phases=12, batch_size=8, seed=seed)
    return max(p.rounds for p in alg.phases if p.batch_size > 0)


def test_exp4_rounds_vs_phi(benchmark):
    phi_rows = []
    for phi in PHIS:
        measured = _max_rounds(256, phi, seed=int(100 * phi))
        phi_rows.append({
            "phi": phi,
            "rounds/batch(max)": measured,
            "bound O(1/phi)": int(rounds_bound_per_batch(phi)),
        })
    print_table(phi_rows, title="EXP-4a rounds vs phi (n=256)")

    n_rows = []
    for n in SIZES:
        n_rows.append({
            "n": n,
            "rounds/batch(max)": _max_rounds(n, 0.5, seed=n),
        })
    print_table(n_rows, title="EXP-4b rounds vs n (phi=0.5)")

    # Shape: smaller phi never costs fewer rounds, and the bound holds.
    series = [row["rounds/batch(max)"] for row in phi_rows]
    assert series[0] >= series[-1]
    for row in phi_rows:
        assert row["rounds/batch(max)"] <= row["bound O(1/phi)"]
    # Shape: constant in n for fixed phi.
    n_series = [row["rounds/batch(max)"] for row in n_rows]
    assert max(n_series) - min(n_series) <= 12

    benchmark(lambda: _max_rounds(64, 0.5, seed=0))
