"""EXP-7 ("Table 3"): approximate matching -- ratio and memory vs alpha.

Theorem 1.3's two regimes: insertion-only greedy with ~O(n/alpha)
memory, and the AKLY sparsifier with ~O(max(n^2/alpha^3, n/alpha)) for
dynamic streams.  Sweeping alpha shows the paper's trade-off: memory
shrinks polynomially in alpha while the measured approximation ratio
stays within the O(alpha) envelope.
"""

from __future__ import annotations

import pytest

from conftest import standard_config
from repro.analysis import (
    matching_memory_bound_dynamic,
    matching_memory_bound_insert_only,
    print_table,
)
from repro.baselines import maximum_matching_size
from repro.core import AKLYMatching, GreedyMatchingInsertOnly
from repro.streams import as_batches, planted_matching_insertions
from repro.types import dele

N = 256
ALPHAS = [2.0, 4.0, 8.0]


def _workload():
    updates = planted_matching_insertions(N, size=N // 4, noise=N // 2,
                                          seed=7)
    opt = maximum_matching_size(N, [u.edge for u in updates])
    return updates, opt


def test_exp7_matching(benchmark):
    updates, opt = _workload()
    rows = []
    for alpha in ALPHAS:
        greedy = GreedyMatchingInsertOnly(standard_config(N, seed=1),
                                          alpha=alpha)
        for batch in as_batches(updates, 16):
            greedy.apply_batch(batch)
        rows.append({
            "algorithm": "greedy (ins-only)",
            "alpha": alpha,
            "OPT": opt,
            "alg": greedy.matching_size(),
            "OPT/alg": opt / max(1, greedy.matching_size()),
            "memory": greedy.total_memory_words(),
            "memory_bound": int(
                matching_memory_bound_insert_only(N, alpha)
            ),
        })

        akly = AKLYMatching(standard_config(N, seed=2), alpha=alpha)
        for batch in as_batches(updates, 16):
            akly.apply_batch(batch)
        # Exercise the dynamic path: delete half the noise edges.
        noise_deletes = [dele(u.u, u.v) for u in updates[::3]]
        for batch in as_batches(noise_deletes, 16):
            akly.apply_batch(batch)
        remaining = {u.edge for u in updates} - \
            {d.edge for d in noise_deletes}
        opt_after = maximum_matching_size(N, remaining)
        rows.append({
            "algorithm": "AKLY (dynamic)",
            "alpha": alpha,
            "OPT": opt_after,
            "alg": akly.matching_size(),
            "OPT/alg": opt_after / max(1, akly.matching_size()),
            "memory": akly.total_memory_words(),
            "memory_bound": int(matching_memory_bound_dynamic(N, alpha)),
        })
    print_table(rows, title=f"EXP-7 matching ratio & memory vs alpha "
                            f"(n={N})")

    for row in rows:
        assert row["alg"] >= 1
        assert row["OPT/alg"] <= 8 * row["alpha"], row
        assert row["memory"] <= row["memory_bound"], row
    # Memory monotonically shrinks with alpha within each family.
    for family in ("greedy (ins-only)", "AKLY (dynamic)"):
        trace = [row["memory"] for row in rows
                 if row["algorithm"] == family]
        assert all(b < a for a, b in zip(trace, trace[1:]))

    def kernel():
        alg = AKLYMatching(standard_config(64, seed=3), alpha=4.0)
        for batch in as_batches(
                planted_matching_insertions(64, 16, noise=32, seed=4), 16):
            alg.apply_batch(batch)
        return alg.matching_size()

    benchmark(kernel)
