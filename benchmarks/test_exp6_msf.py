"""EXP-6 ("Table 2"): minimum spanning forest quality and cost.

(i) exact MSF on insertion-only streams must equal the offline MST
bit-for-bit; (ii) the (1+eps) dynamic variant's weight estimate and
assembled forest must sit inside the [w*, (1+eps) w*] window for every
eps, with rounds constant throughout.
"""

from __future__ import annotations

import pytest

from conftest import standard_config, summarize_phases
from repro.analysis import print_table
from repro.baselines import msf_weight
from repro.core import ApproxMSF, ExactMSFInsertOnly
from repro.streams import ChurnStream, as_batches, weighted_insertions

N = 128
EPSILONS = [0.1, 0.25, 0.5]


def _exact_row():
    alg = ExactMSFInsertOnly(standard_config(N, seed=6))
    updates = weighted_insertions(N, 4 * N, max_weight=100, seed=7)
    for batch in as_batches(updates, 16):
        alg.apply_batch(batch)
    ref = msf_weight(N, [(u.u, u.v, u.weight) for u in updates])
    stats = summarize_phases(alg)
    return {
        "variant": "exact (insert-only)",
        "eps": "-",
        "w*": ref,
        "w(alg)": alg.msf_weight(),
        "w/w*": alg.msf_weight() / ref,
        "swap passes(max)": alg.stats["max_passes"],
        **stats,
    }


def _approx_row(eps: float):
    alg = ApproxMSF(standard_config(N, seed=8), eps=eps, max_weight=64)
    stream = ChurnStream(N, seed=9, delete_fraction=0.25,
                         target_edges=3 * N, weights=(1, 64))
    live = {}
    for batch in stream.batches(15, 10):
        alg.apply_batch(batch)
        for up in batch:
            if up.is_insert:
                live[up.edge] = up.weight
            else:
                live.pop(up.edge, None)
    ref = msf_weight(N, [(u, v, w) for (u, v), w in live.items()])
    forest = alg.query_forest()
    stats = summarize_phases(alg)
    return {
        "variant": "(1+eps) dynamic",
        "eps": eps,
        "w*": ref,
        "w(alg)": alg.weight_estimate(),
        "w/w*": alg.weight_estimate() / ref,
        "forest edges": len(forest.edges),
        **stats,
    }


def test_exp6_msf(benchmark):
    rows = [_exact_row()] + [_approx_row(eps) for eps in EPSILONS]
    print_table(rows, title=f"EXP-6 MSF quality (n={N})")

    assert rows[0]["w/w*"] == pytest.approx(1.0), "exact MSF must be exact"
    for row, eps in zip(rows[1:], EPSILONS):
        assert 1.0 - 1e-9 <= row["w/w*"] <= 1 + eps + 1e-9, row
    # Rounds stay constant (a few passes for the exact variant).
    assert all(row["rounds/batch(max)"] <= 200 for row in rows)

    def kernel():
        alg = ExactMSFInsertOnly(standard_config(64, seed=10))
        for batch in as_batches(
                weighted_insertions(64, 128, max_weight=50, seed=11), 16):
            alg.apply_batch(batch)
        return alg.msf_weight()

    benchmark(kernel)
