"""EXP-11: substrate micro-benchmarks (classic pytest-benchmark).

Wall-clock timings of the hot kernels under everything else: L0-sampler
updates and merges, distributed Euler-tour batch splice/split, and the
real message-passing sort.  These are the numbers a downstream user
sizing a workload actually needs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.euler import DistributedEulerForest
from repro.mpc import Cluster, MPCConfig, distributed_sort_flat
from repro.sketch import L0Sampler, SamplerRandomness, SketchFamily
from repro.streams import random_tree_insertions


@pytest.fixture(scope="module")
def randomness():
    return SamplerRandomness(universe=500_000, columns=8,
                             rng=np.random.default_rng(0))


def test_l0_update(benchmark, randomness):
    sampler = L0Sampler(randomness)
    counter = iter(range(10 ** 9))

    def update():
        sampler.update(next(counter) % 500_000, 1)

    benchmark(update)


def test_l0_merge_component(benchmark, randomness):
    samplers = []
    for i in range(64):
        sampler = L0Sampler(randomness)
        sampler.update(i * 101 % 500_000, 1)
        samplers.append(sampler)
    benchmark(lambda: L0Sampler.merged(samplers))


def test_l0_sample(benchmark, randomness):
    sampler = L0Sampler(randomness)
    for i in range(200):
        sampler.update(i * 997 % 500_000, 1)
    benchmark(sampler.sample)


def test_vertex_sketch_edge_update(benchmark):
    family = SketchFamily(1024, columns=8,
                          rng=np.random.default_rng(1))
    sketch = family.new_vertex_sketch(0)
    counter = iter(range(1, 10 ** 9))

    def update():
        v = next(counter) % 1023 + 1
        sketch.apply_edge(0, v, 1)

    benchmark(update)


def test_euler_batch_link(benchmark):
    updates = random_tree_insertions(256, seed=3)

    def build():
        forest = DistributedEulerForest(256)
        forest.batch_link([up.edge for up in updates])
        return forest

    benchmark(build)


def test_euler_batch_cut(benchmark):
    updates = random_tree_insertions(256, seed=4)
    edges = [up.edge for up in updates]

    def setup():
        forest = DistributedEulerForest(256)
        forest.batch_link(edges)
        return (forest,), {}

    def shatter(forest):
        forest.batch_cut(edges[::4])
        return forest

    benchmark.pedantic(shatter, setup=setup, rounds=10)


def test_euler_path_query(benchmark):
    forest = DistributedEulerForest(512)
    forest.batch_link([(i, i + 1) for i in range(511)])
    benchmark(lambda: forest.path_edges(0, 511))


def test_distributed_sort(benchmark):
    cluster = Cluster(MPCConfig(n=256, phi=0.5, seed=5, num_machines=16))
    items = list(np.random.default_rng(6).integers(0, 10 ** 6, 2000))
    benchmark(lambda: distributed_sort_flat(cluster, items))
