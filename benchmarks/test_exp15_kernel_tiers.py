"""EXP-15: per-kernel micro-benchmarks across ``REPRO_KERNELS`` tiers.

EXP-12/13/14 measure composed hot paths (ingest, query, backend
dispatch); EXP-15 isolates the ten dispatched kernels themselves
(:mod:`repro.kernels`) at representative shapes -- the GF(2^61-1) limb
arithmetic, level hashing, pool scatter, batch prefix decoder, and the
group-merge / zero-test cell cores -- and times each one on every tier
:func:`repro.kernels.available_tiers` offers in this process.

Two things are recorded per kernel into ``BENCH_ingest.json`` under
``exp15_kernels``:

* best-of-reps wall time per tier (``numpy`` always; ``numba`` when
  importable, with a warm-up call so JIT compilation never lands in
  the measurement), and
* the compiled-over-numpy speedup when both tiers ran.

Before any timing, the tiers' outputs are asserted **bit-identical**
on the exact benchmark inputs -- the same contract
``tests/test_kernels.py`` checks on small shapes, re-checked here at
benchmark scale.  There is no perf gate: the composed floors live in
EXP-14; this table exists so a tier regression can be localized to the
kernel that caused it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from conftest import kernels_stamp, numeric_provenance

from repro import kernels
from repro.analysis import print_table
from repro.lint.stamp import lint_stamp
from repro.mpc.backend import available_cpus

MERSENNE_P = (1 << 61) - 1

#: Representative shapes: n=1024 vertices, 20 columns, 9 levels (the
#: EXP-14 workload's geometry), 4096-entry update batches.
ROWS = 1024
COLUMNS = 20
LEVELS = 9
BATCH = 4096
ELEMS = 65536
REPS = 5
Z = 1_234_567_891_234_567

_RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ingest.json"


def _build_cases():
    """``name -> args_factory`` for every dispatched kernel.

    Each factory returns a *fresh* argument tuple (``pool_scatter``
    mutates its first argument in place, so parity runs and every
    timing rep must not share buffers).  Factories are deterministic:
    both tiers see bit-identical inputs.
    """
    rng = np.random.default_rng(20260808)
    residues = rng.integers(0, MERSENNE_P, 2 * ELEMS,
                            dtype=np.uint64)
    a, b = residues[:ELEMS], residues[ELEMS:]
    coeffs = rng.integers(0, MERSENNE_P, (4, COLUMNS), dtype=np.uint64)
    xs = rng.integers(0, MERSENNE_P, BATCH, dtype=np.uint64)
    tz_input = rng.integers(0, 1 << 62, ELEMS, dtype=np.uint64)
    exps = rng.integers(0, ROWS, BATCH, dtype=np.uint64)
    lo = rng.integers(-(1 << 40), 1 << 40, ELEMS, dtype=np.int64)
    hi = rng.integers(-(1 << 40), 1 << 40, ELEMS, dtype=np.int64)

    slots = rng.integers(0, ROWS, BATCH, dtype=np.int64)
    col_levels = rng.integers(0, LEVELS, (BATCH, COLUMNS),
                              dtype=np.int64)
    idxs = rng.integers(0, ROWS, BATCH, dtype=np.int64)
    deltas = rng.choice(np.array([-1, 1], dtype=np.int64), BATCH)
    zpows = rng.integers(0, MERSENNE_P, BATCH, dtype=np.int64)

    prefix = rng.integers(-(1 << 30), 1 << 30, (4, ROWS, LEVELS),
                          dtype=np.int64)
    cells = rng.integers(-4, 5, (ROWS, 4, COLUMNS, LEVELS),
                         dtype=np.int64)
    cells[:: 3] = 0  # give the zero test's early column exit work
    members = rng.permutation(ROWS).astype(np.int64)
    glens = np.bincount(rng.integers(0, 64, ROWS), minlength=64)
    glens = glens.astype(np.int64)

    return {
        "mulmod_many": lambda: (a, b),
        "addmod_many": lambda: (a, b),
        "poly_field_values": lambda: (coeffs, xs),
        "trailing_zeros_many": lambda: (tz_input, LEVELS),
        "powmod_many": lambda: (exps, Z),
        "combine_limbs": lambda: (lo, hi),
        "pool_scatter": lambda: (
            np.zeros(ROWS * 4 * COLUMNS * LEVELS, dtype=np.int64),
            COLUMNS, LEVELS, slots, col_levels, idxs, deltas, zpows,
        ),
        "decode_prefix": lambda: (prefix.copy(), ROWS, Z),
        "merge_groups": lambda: (cells, members, glens),
        "is_zero_cells": lambda: (cells,),
    }


def _observable(name, args, result):
    """What to compare across tiers: the return value, except for the
    in-place ``pool_scatter`` whose output is its mutated buffer."""
    return args[0] if name == "pool_scatter" else result


def _time_kernel(fn, make_args):
    best = float("inf")
    for _ in range(REPS):
        args = make_args()
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_exp15_kernel_tiers():
    tiers = kernels.available_tiers()
    cases = _build_cases()
    assert set(cases) == set(kernels.kernel_names()), (
        "EXP-15 must cover every dispatched kernel"
    )

    measured = {name: {} for name in cases}
    baseline = {}
    try:
        for tier in tiers:
            kernels.set_tier(tier)
            for name, make_args in cases.items():
                fn = getattr(kernels, name)
                args = make_args()
                observed = _observable(name, args, fn(*args))
                if name in baseline:
                    # The tentpole contract at benchmark scale: tiers
                    # are bit-identical on the exact inputs we time.
                    assert np.array_equal(baseline[name], observed), (
                        f"kernel {name!r}: tier {tier!r} disagrees "
                        f"with {tiers[0]!r}"
                    )
                else:
                    baseline[name] = observed
                measured[name][tier] = _time_kernel(fn, make_args)
    finally:
        kernels.set_tier(kernels.resolve_env_tier())

    rows = []
    recorded = {}
    for name, times in measured.items():
        entry = {f"{tier}_time_sec": t for tier, t in times.items()}
        row = {"kernel": name}
        for tier in tiers:
            row[f"{tier} (us)"] = round(times[tier] * 1e6, 1)
        if "numpy" in times and "numba" in times:
            speedup = times["numpy"] / times["numba"]
            entry["numba_speedup"] = speedup
            row["numba speedup"] = round(speedup, 2)
        recorded[name] = entry
        rows.append(row)
    print_table(rows, title=f"EXP-15 kernel tiers "
                            f"(tiers={'/'.join(tiers)}, reps={REPS}, "
                            f"cpus={available_cpus()})")

    payload = {}
    if _RESULT_PATH.exists():
        payload = json.loads(_RESULT_PATH.read_text())
    payload["exp15_kernels"] = {
        "rows": ROWS,
        "columns": COLUMNS,
        "levels": LEVELS,
        "batch": BATCH,
        "elems": ELEMS,
        "reps": REPS,
        "cpus": available_cpus(),
        "tiers": list(tiers),
        "kernels": recorded,
    }
    stamp = lint_stamp()
    payload["lint"] = {"rule_pack": stamp["rule_pack"],
                       "findings": stamp["findings"]}
    payload["kernels"] = kernels_stamp()
    payload["numeric"] = numeric_provenance()
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
