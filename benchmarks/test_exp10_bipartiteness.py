"""EXP-10 ("Fig 5"): dynamic bipartiteness via the double cover.

Theorem 7.3: maintaining bipartiteness costs two connectivity instances
(G and its double cover G'), O(1) rounds per batch.  The experiment
drives odd/even cycle surgery -- the structure flips parity many times
-- and records detection correctness, round cost, and the measured
cover overhead (which Lemma 7.4 pins at ~2x).
"""

from __future__ import annotations

import pytest

from conftest import standard_config
from repro.analysis import print_table
from repro.baselines import is_bipartite as nx_bipartite
from repro.core import DynamicBipartiteness
from repro.streams import even_cycle_insertions
from repro.types import dele, ins

N = 64


def _parity_surgery():
    """Build an even cycle, then repeatedly toggle odd chords."""
    alg = DynamicBipartiteness(standard_config(N, seed=10))
    live = set()
    checks = []

    def apply(batch):
        alg.apply_batch(batch)
        for up in batch:
            if up.is_insert:
                live.add(up.edge)
            else:
                live.discard(up.edge)
        expected = nx_bipartite(N, live)
        checks.append((alg.is_bipartite(), expected))

    cycle = even_cycle_insertions(N)
    apply(cycle[:N // 2])
    apply(cycle[N // 2:])
    for chord in ((0, 2), (10, 14), (1, 5)):
        apply([ins(*chord)])       # even chord keeps parity
    apply([ins(0, 3)])             # odd chord breaks bipartiteness
    apply([dele(0, 3)])            # and restores it
    apply([ins(7, 20), ins(21, 40)])  # odd chords (distance 13, 19)
    apply([dele(7, 20), dele(21, 40)])
    return alg, checks


def test_exp10_bipartiteness(benchmark):
    alg, checks = _parity_surgery()
    correct = sum(1 for got, want in checks if got == want)
    breakdown = alg.memory_breakdown()
    rows = [{
        "phases": len(checks),
        "correct detections": f"{correct}/{len(checks)}",
        "rounds/batch(max)": alg.max_rounds(),
        "base memory": breakdown["base-instance"],
        "cover memory": breakdown["cover-instance"],
        "cover/base": breakdown["cover-instance"]
        / breakdown["base-instance"],
    }]
    print_table(rows, title=f"EXP-10 dynamic bipartiteness (n={N})")

    assert correct == len(checks), "every parity flip must be detected"
    assert alg.max_rounds() <= 90
    # The double cover costs about twice the base instance (2n vertices),
    # not more than ~3x with polylog slack.
    assert 1.5 <= rows[0]["cover/base"] <= 3.5

    benchmark(lambda: _parity_surgery()[0].is_bipartite())
