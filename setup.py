"""Shim for legacy editable installs (offline env lacks the wheel pkg)."""

from setuptools import setup

setup()
